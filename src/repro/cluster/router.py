"""Request routing: consistent hashing, replica fan-out, fail-over.

The router sits between the gateway and the supervisor.  Every
data-plane request gets a routing key (:func:`repro.cluster.codec.routing_key`)
and a **replica set** — the first ``replication`` distinct workers
clockwise on the :class:`~repro.cluster.hashring.HashRing`.  Because
workers are full replicas of the standing dataset (every ingest is
fanned out to all of them), any replica can answer any query; the ring
buys *affinity*, not partitioning: repeats of one query land on the
same worker and hit its warm result cache, while distinct keys spread
across the fleet, which is where the 1→N process-scaling comes from.

Read policies:

* ``first`` (default) — ask the key's replicas in ring order,
  preferring currently-available workers; the first answer wins, and a
  dead or erroring replica is skipped (``cluster.route.failover``).
  With ``replication ≥ 2`` a killed-and-restarting worker costs
  latency, never availability.
* ``quorum`` — ask every reachable replica and require a majority of
  the responders to agree on the answer payload (volatile serving
  metadata — latency, cache flags — excluded from the comparison).
  Replicas are deterministic builds of the same world, so disagreement
  means a corrupted or stale worker; the majority answer wins and the
  mismatch is counted on ``ev_cluster_quorum_disagreements_total``.

Ingest is not routed but **broadcast**: every available worker applies
(and journals) the new scenarios, and the router remembers them in an
in-memory replay log so a worker that was down catches up the moment
the supervisor reports it ready again (`on_worker_ready`), making the
fleet's stores convergent across crash/restart cycles.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.codec import error_response, routing_key
from repro.cluster.hashring import DEFAULT_VNODES, HashRing
from repro.cluster.supervisor import Supervisor, WorkerError
from repro.cluster.telemetry import TraceCollector
from repro.obs import get_event_log, get_registry, get_tracer
from repro.obs import events as ev
from repro.obs.tracing import extract_trace
from repro.service.api import STATUS_OK

#: Supported read policies.
READ_POLICIES = ("first", "quorum")

#: Serving metadata excluded from quorum payload comparison.  The
#: telemetry fields are identical across replicas of one traced
#: request (the spans themselves are popped before the digest), but
#: excluding them keeps quorum semantics independent of tracing.
_VOLATILE_FIELDS = (
    "latency_s", "cached", "deduplicated", "batched_with",
    "trace_id", "spans",
)


def _payload_digest(response: Dict[str, Any]) -> str:
    stable = {
        key: value
        for key, value in response.items()
        if key not in _VOLATILE_FIELDS
    }
    return json.dumps(stable, sort_keys=True, separators=(",", ":"))


class ClusterRouter:
    """Routes wire messages to supervised workers.

    Args:
        supervisor: the worker fleet (must not be started yet or must
            have no ``on_worker_ready`` hook of its own — the router
            installs one to replay missed ingests).
        replication: replica fan-out per key; ≥2 keeps queries
            answerable while one worker is down.
        read_policy: ``"first"`` or ``"quorum"``.
        vnodes: ring points per worker.
        trace_collector: where worker span records returned with
            traced responses are folded (every replica's on quorum
            reads, every attempt's on failover).  ``None`` still strips
            the records off responses; the gateway installs its
            collector at startup.
    """

    def __init__(
        self,
        supervisor: Supervisor,
        replication: int = 2,
        read_policy: str = "first",
        vnodes: int = DEFAULT_VNODES,
        trace_collector: Optional[TraceCollector] = None,
    ) -> None:
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        if read_policy not in READ_POLICIES:
            raise ValueError(
                f"read_policy must be one of {READ_POLICIES}, "
                f"got {read_policy!r}"
            )
        self.supervisor = supervisor
        self.replication = min(replication, len(supervisor.workers))
        self.read_policy = read_policy
        self.ring = HashRing(supervisor.worker_ids, vnodes=vnodes)
        self._ingest_log: List[Dict[str, Any]] = []
        self._ingest_lock = threading.Lock()
        self._registry = get_registry()
        self.trace_collector = trace_collector
        supervisor.on_worker_ready = self._replay_missed_ingests

    # -- metrics helpers -------------------------------------------------
    def _count(self, verb: str, status: str) -> None:
        self._registry.counter(
            "ev_cluster_requests_total",
            "Requests routed to workers, by verb and outcome",
        ).inc(verb=verb, status=status)

    def _failover(self, verb: str, worker_id: str, error: str) -> None:
        self._registry.counter(
            "ev_cluster_failovers_total",
            "Requests retried on another replica, by verb",
        ).inc(verb=verb)
        log = get_event_log()
        if log.enabled:
            log.emit(
                ev.CLUSTER_ROUTE_FAILOVER,
                verb=verb,
                worker=worker_id,
                error=error,
            )

    # -- routing ---------------------------------------------------------
    def replicas_for(self, message: Dict[str, Any]) -> List[str]:
        """The key's replica set, available workers first (ring order
        preserved within each group)."""
        candidates = self.ring.nodes_for(
            routing_key(message), self.replication
        )
        available = set(self.supervisor.available())
        return sorted(candidates, key=lambda wid: wid not in available)

    def _harvest_spans(
        self, response: Dict[str, Any], worker_id: str
    ) -> None:
        """Pop a worker response's span records into the collector.

        Always strips ``"spans"`` (clients get the trace via the
        gateway's ``trace`` verb, not inline), and must run before any
        quorum digest so replica span records — which legitimately
        differ per replica — cannot read as payload disagreement.
        """
        records = response.pop("spans", None)
        trace_id = response.get("trace_id")
        if records and trace_id and self.trace_collector is not None:
            self.trace_collector.add_records(
                str(trace_id), records, label=f"worker {worker_id}"
            )

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Route one wire request; returns the wire response.

        Runs on the gateway's dispatch pool, whose threads do not
        inherit the request handler's contextvars — so the message's
        own trace envelope (injected by the gateway) is re-activated
        here, putting ``cluster.request`` and everything under it in
        the request's trace.
        """
        verb = str(message.get("verb", "?"))
        tracer = get_tracer()
        with tracer.remote_context(extract_trace(message)):
            with tracer.span("cluster.request", verb=verb):
                if verb == "ingest":
                    response = self._dispatch_ingest(message)
                elif self.read_policy == "quorum":
                    response = self._dispatch_quorum(message, verb)
                else:
                    response = self._dispatch_first(message, verb)
        self._count(verb, str(response.get("status", "error")))
        return response

    def _dispatch_first(
        self, message: Dict[str, Any], verb: str
    ) -> Dict[str, Any]:
        last_error = "no replica available"
        for attempt, worker_id in enumerate(self.replicas_for(message)):
            handle = self.supervisor.worker(worker_id)
            try:
                response = handle.request(message)
            except WorkerError as exc:
                last_error = str(exc)
                self._failover(verb, worker_id, last_error)
                continue
            self._harvest_spans(response, worker_id)
            response["worker"] = worker_id
            response["failovers"] = attempt
            return response
        return error_response(verb, last_error)

    def _dispatch_quorum(
        self, message: Dict[str, Any], verb: str
    ) -> Dict[str, Any]:
        """Majority-of-responders read (see module docstring)."""
        responses: List[Tuple[str, Dict[str, Any]]] = []
        for worker_id in self.replicas_for(message):
            handle = self.supervisor.worker(worker_id)
            try:
                response = handle.request(message)
            except WorkerError as exc:
                self._failover(verb, worker_id, str(exc))
                continue
            self._harvest_spans(response, worker_id)
            responses.append((worker_id, response))
        if not responses:
            return error_response(verb, "no replica available")
        votes: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for worker_id, response in responses:
            votes.setdefault(_payload_digest(response), []).append(
                (worker_id, response)
            )
        majority = max(votes.values(), key=len)
        if len(votes) > 1:
            self._registry.counter(
                "ev_cluster_quorum_disagreements_total",
                "Quorum reads where replicas returned differing payloads",
            ).inc(verb=verb)
        worker_id, response = majority[0]
        response["worker"] = worker_id
        response["quorum"] = len(majority)
        response["responders"] = len(responses)
        return response

    # -- ingest (broadcast + replay) -------------------------------------
    def _dispatch_ingest(self, message: Dict[str, Any]) -> Dict[str, Any]:
        scenarios = message.get("scenarios", [])
        with self._ingest_lock:
            self._ingest_log.extend(scenarios)
        acked = 0
        ingested = 0
        errors: List[str] = []
        for worker_id in self.supervisor.available():
            handle = self.supervisor.worker(worker_id)
            try:
                response = handle.request(message)
            except WorkerError as exc:
                errors.append(f"{worker_id}: {exc}")
                self._failover("ingest", worker_id, str(exc))
                continue
            self._harvest_spans(response, worker_id)
            if response.get("status") == STATUS_OK:
                acked += 1
                ingested = max(ingested, int(response.get("ingested", 0)))
            else:
                errors.append(f"{worker_id}: {response.get('error')}")
        if not acked:
            return error_response(
                "ingest", "; ".join(errors) or "no worker available"
            )
        return {
            "verb": "ingest",
            "status": STATUS_OK,
            "ingested": ingested,
            "workers_acked": acked,
            "errors": errors,
        }

    @property
    def ingest_log_size(self) -> int:
        with self._ingest_lock:
            return len(self._ingest_log)

    def _replay_missed_ingests(self, worker_id: str) -> None:
        """Catch a restarted worker up on ingests it missed while down.

        Idempotent end to end: the worker skips scenarios whose key is
        already in its store (journal replay covers the ones it had
        accepted before crashing).
        """
        with self._ingest_lock:
            scenarios = list(self._ingest_log)
        if not scenarios:
            return
        with get_tracer().span(
            "cluster.ingest.replay", worker=worker_id, scenarios=len(scenarios)
        ):
            handle = self.supervisor.worker(worker_id)
            try:
                response = handle.request(
                    {"verb": "ingest", "scenarios": scenarios}
                )
            except WorkerError as exc:
                self._failover("ingest.replay", worker_id, str(exc))
                return
        self._harvest_spans(response, worker_id)
        self._registry.counter(
            "ev_cluster_ingest_replayed_total",
            "Scenarios re-offered to restarted workers",
        ).inc(len(scenarios), worker=worker_id)
        log = get_event_log()
        if log.enabled:
            log.emit(
                ev.CLUSTER_INGEST_REPLAYED,
                worker=worker_id,
                offered=len(scenarios),
                applied=int(response.get("ingested", 0)),
                duplicates=int(response.get("duplicates", 0)),
            )

    def describe(self) -> Dict[str, Any]:
        """Routing snapshot for the gateway's ``stats`` verb."""
        return {
            "replication": self.replication,
            "read_policy": self.read_policy,
            "vnodes": self.ring.vnodes,
            "nodes": list(self.ring.nodes),
            "ingest_log": self.ingest_log_size,
        }
