"""Worker supervision: spawn, watch, and restart shard processes.

The supervisor owns one :class:`WorkerHandle` per shard.  A handle is
the *slot*, not the process: the process behind it dies and is
respawned, while the handle keeps the worker's identity (its ring node
name), its connection pool, and its restart history.

Failure detection runs in one monitor thread:

* **crash** — ``Process.is_alive()`` goes false (the OS reaped it);
* **hang** — the process is alive but its control-pipe heartbeat is
  older than ``heartbeat_timeout_s`` (a worker stuck under the GIL in
  native code, or SIGSTOPped); the supervisor kills it so the case
  converges to a crash.

Either way the worker goes ``down`` and a respawn is scheduled after a
**capped exponential backoff** (``backoff_base_s * 2^restarts``, capped
at ``backoff_cap_s``), so a fast-crashing worker cannot hog a CPU with
spawn churn.  On respawn the child rebuilds its store through the
dataset build/load plus the :class:`~repro.stream.pipeline.DurableStoreSink`
journal replay, and the router's ``on_worker_ready`` hook re-offers any
ingests the worker missed while down (idempotent: the store suppresses
duplicates).

Availability transitions are recorded honestly: the first worker lost
emits ``cluster.health.degraded``; the event log shows
``cluster.health.ok`` only when every slot is serving again.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.cluster.protocol import recv_frame, send_frame
from repro.cluster.worker import (
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_SHUTDOWN,
    MSG_STOPPED,
    WorkerSpec,
    worker_main,
)
from repro.obs import get_event_log, get_registry, get_tracer
from repro.obs import events as ev

#: Handle lifecycle states.
STARTING = "starting"
READY = "ready"
DOWN = "down"
STOPPED = "stopped"


class WorkerError(RuntimeError):
    """A request could not be completed by this worker (dead socket,
    worker not ready, timeout); the router treats it as fail-over."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs.

    Attributes:
        heartbeat_timeout_s: heartbeat silence that declares a live
            process hung (must exceed the spec's heartbeat interval
            by a healthy margin).
        poll_interval_s: monitor loop cadence.
        backoff_base_s / backoff_cap_s: restart delay is
            ``min(cap, base * 2^restarts)``.
        ready_timeout_s: bound on the initial all-workers-up wait.
        request_timeout_s: socket timeout for one worker request.
        connect_timeout_s: socket timeout for dialing a worker.
    """

    heartbeat_timeout_s: float = 3.0
    poll_interval_s: float = 0.05
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 5.0
    ready_timeout_s: float = 120.0
    request_timeout_s: float = 60.0
    connect_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                "backoff must satisfy 0 < base <= cap, got "
                f"{self.backoff_base_s} / {self.backoff_cap_s}"
            )


class WorkerHandle:
    """One supervised worker slot (survives process restarts)."""

    def __init__(self, spec: WorkerSpec, config: SupervisorConfig) -> None:
        self.spec = spec
        self.config = config
        self.state = STOPPED
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None  # parent end of the control pipe
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.reloaded = 0
        self.restarts = 0
        self.backoff_until = 0.0
        self.last_backoff_s = 0.0
        self.last_heartbeat = 0.0
        self._pool: List[socket.socket] = []
        self._pool_lock = threading.Lock()
        # Telemetry payloads piggybacked on heartbeats, drained by the
        # supervisor's monitor loop.  Bounded: with no consumer (or a
        # slow one) old beats fall off instead of growing the handle.
        self._telemetry: Deque[Dict] = deque(maxlen=8)

    @property
    def worker_id(self) -> str:
        return self.spec.worker_id

    # -- lifecycle -------------------------------------------------------
    def spawn(self) -> None:
        """Start (or restart) the worker process."""
        ctx = multiprocessing.get_context("spawn")
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(self.spec, child_conn),
            name=f"repro-cluster-{self.worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.state = STARTING
        self.port = None
        self.last_heartbeat = time.monotonic()
        log = get_event_log()
        if log.enabled:
            log.emit(
                ev.CLUSTER_WORKER_SPAWNED,
                worker=self.worker_id,
                pid=self.process.pid,
                restarts=self.restarts,
            )

    def poll_control(self) -> bool:
        """Drain control-pipe messages; returns True when the worker
        transitioned to ready during this poll."""
        became_ready = False
        conn = self.conn
        if conn is None:
            return False
        try:
            while conn.poll(0):
                message = conn.recv()
                if not isinstance(message, dict):
                    continue
                kind = message.get("type")
                if kind == MSG_READY:
                    self.port = int(message["port"])
                    self.pid = int(message["pid"])
                    self.reloaded = int(message.get("reloaded", 0))
                    self.state = READY
                    self.last_heartbeat = time.monotonic()
                    became_ready = True
                    log = get_event_log()
                    if log.enabled:
                        log.emit(
                            ev.CLUSTER_WORKER_READY,
                            worker=self.worker_id,
                            pid=self.pid,
                            port=self.port,
                            reloaded=self.reloaded,
                            scenarios=message.get("scenarios", 0),
                            restarts=self.restarts,
                        )
                elif kind == MSG_HEARTBEAT:
                    self.last_heartbeat = time.monotonic()
                    telemetry = message.get("telemetry")
                    if isinstance(telemetry, dict):
                        self._telemetry.append(telemetry)
                elif kind == MSG_STOPPED:
                    pass  # graceful exit acknowledged; is_alive soon false
        except (EOFError, OSError):
            pass  # pipe closed: the liveness check will catch it
        return became_ready

    def take_telemetry(self) -> List[Dict]:
        """Drain the buffered telemetry beats (oldest first)."""
        drained: List[Dict] = []
        while True:
            try:
                drained.append(self._telemetry.popleft())
            except IndexError:
                return drained

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def heartbeat_age(self) -> float:
        return time.monotonic() - self.last_heartbeat

    def kill(self) -> None:
        """Hard-kill the process (tests and hang handling)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    def mark_down(self, backoff: bool = True) -> float:
        """Transition to ``down``; returns the scheduled backoff delay."""
        self.state = DOWN
        self._close_pool()
        delay = 0.0
        if backoff:
            delay = min(
                self.config.backoff_cap_s,
                self.config.backoff_base_s * (2 ** self.restarts),
            )
            self.restarts += 1
        self.last_backoff_s = delay
        self.backoff_until = time.monotonic() + delay
        return delay

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: shutdown message, join, then escalate."""
        self.state = STOPPED
        self._close_pool()
        if self.conn is not None:
            try:
                self.conn.send({"type": MSG_SHUTDOWN})
            except (OSError, ValueError, BrokenPipeError):
                pass
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        log = get_event_log()
        if log.enabled:
            log.emit(ev.CLUSTER_WORKER_STOPPED, worker=self.worker_id)

    # -- data channel ----------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.port is None:
            raise WorkerError(f"worker {self.worker_id} has no bound port")
        try:
            sock = socket.create_connection(
                (self.spec.host, self.port),
                timeout=self.config.connect_timeout_s,
            )
        except OSError as exc:
            raise WorkerError(
                f"cannot reach worker {self.worker_id}: {exc}"
            ) from exc
        sock.settimeout(self.config.request_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._pool_lock:
            self._pool.append(sock)

    def _close_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass

    def request(self, message: Dict) -> Dict:
        """One framed request/response exchange with this worker."""
        if self.state != READY:
            raise WorkerError(
                f"worker {self.worker_id} is {self.state}, not ready"
            )
        sock = self._checkout()
        try:
            send_frame(sock, message)
            response = recv_frame(sock)
        except Exception as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise WorkerError(
                f"request to worker {self.worker_id} failed: {exc}"
            ) from exc
        self._checkin(sock)
        return response


class Supervisor:
    """Spawns the worker fleet and keeps it alive.

    Args:
        specs: one :class:`WorkerSpec` per worker slot.
        config: supervision knobs.
        on_worker_ready: called (from the monitor thread) with the
            worker id whenever a worker becomes ready *after a
            restart* — the router uses it to replay missed ingests.
        on_telemetry: called (from the monitor thread) with
            ``(worker_id, payload)`` for every telemetry beat a worker
            piggybacks on its heartbeat — the gateway's
            :class:`~repro.cluster.telemetry.ClusterTelemetry` hooks
            this to federate metrics and adopt shipped events.
    """

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        config: Optional[SupervisorConfig] = None,
        on_worker_ready: Optional[Callable[[str], None]] = None,
        on_telemetry: Optional[Callable[[str, Dict], None]] = None,
    ) -> None:
        if not specs:
            raise ValueError("supervisor needs at least one worker spec")
        ids = [spec.worker_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self.config = config if config is not None else SupervisorConfig()
        self.workers: Dict[str, WorkerHandle] = {
            spec.worker_id: WorkerHandle(spec, self.config) for spec in specs
        }
        self.on_worker_ready = on_worker_ready
        self.on_telemetry = on_telemetry
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._degraded = False
        self._registry = get_registry()

    # -- queries ---------------------------------------------------------
    @property
    def worker_ids(self) -> List[str]:
        return sorted(self.workers)

    def worker(self, worker_id: str) -> WorkerHandle:
        return self.workers[worker_id]

    def available(self) -> List[str]:
        """Worker ids currently serving, in stable order."""
        return [
            worker_id
            for worker_id in self.worker_ids
            if self.workers[worker_id].state == READY
        ]

    def describe(self) -> Dict[str, Dict]:
        """Topology snapshot for the gateway's ``stats`` verb."""
        return {
            worker_id: {
                "state": handle.state,
                "pid": handle.pid,
                "port": handle.port,
                "restarts": handle.restarts,
                "reloaded": handle.reloaded,
                "heartbeat_age_s": round(handle.heartbeat_age(), 3),
            }
            for worker_id, handle in self.workers.items()
        }

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Supervisor":
        with get_tracer().span("cluster.fleet.start", workers=len(self.workers)):
            for handle in self.workers.values():
                handle.spawn()
            deadline = time.monotonic() + self.config.ready_timeout_s
            while time.monotonic() < deadline:
                pending = []
                for handle in self.workers.values():
                    handle.poll_control()
                    if handle.state != READY:
                        if not handle.alive():
                            raise RuntimeError(
                                f"worker {handle.worker_id} died during "
                                f"startup (exit code "
                                f"{handle.process.exitcode})"
                            )
                        pending.append(handle.worker_id)
                if not pending:
                    break
                time.sleep(self.config.poll_interval_s)
            else:
                raise RuntimeError(
                    f"workers not ready within "
                    f"{self.config.ready_timeout_s}s: {pending}"
                )
        self._set_available_gauge()
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
            self._monitor = None
        for handle in self.workers.values():
            handle.shutdown(timeout=timeout)
        self._set_available_gauge()

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- monitoring ------------------------------------------------------
    def _set_available_gauge(self) -> None:
        self._registry.gauge(
            "ev_cluster_workers_available",
            "Worker processes currently serving requests",
        ).set(float(len(self.available())))

    def _record_loss(self, handle: WorkerHandle, kind: str) -> None:
        log = get_event_log()
        delay = handle.mark_down()
        self._registry.counter(
            "ev_cluster_worker_crashes_total",
            "Worker processes lost (crash or hang), by worker",
        ).inc(worker=handle.worker_id, kind=kind)
        if log.enabled:
            log.emit(
                ev.CLUSTER_WORKER_CRASHED
                if kind == "crash"
                else ev.CLUSTER_WORKER_HUNG,
                worker=handle.worker_id,
                pid=handle.pid,
                restarts=handle.restarts,
                backoff_s=delay,
            )
        if not self._degraded:
            self._degraded = True
            if log.enabled:
                log.emit(
                    ev.CLUSTER_HEALTH_DEGRADED,
                    available=len(self.available()),
                    total=len(self.workers),
                    lost_worker=handle.worker_id,
                )

    def _monitor_once(self) -> None:
        now = time.monotonic()
        for handle in self.workers.values():
            if handle.state == STOPPED:
                continue
            became_ready = handle.poll_control()
            if self.on_telemetry is not None:
                for payload in handle.take_telemetry():
                    try:
                        self.on_telemetry(handle.worker_id, payload)
                    except Exception:
                        pass  # telemetry must never take the monitor down
            if became_ready and handle.restarts > 0:
                self._registry.counter(
                    "ev_cluster_worker_restarts_total",
                    "Successful worker restarts, by worker",
                ).inc(worker=handle.worker_id)
                if self.on_worker_ready is not None:
                    try:
                        self.on_worker_ready(handle.worker_id)
                    except Exception:
                        pass  # replay failures surface via router metrics
            if handle.state in (STARTING, READY) and not handle.alive():
                self._record_loss(handle, "crash")
            elif (
                handle.state == READY
                and handle.heartbeat_age() > self.config.heartbeat_timeout_s
            ):
                handle.kill()
                self._record_loss(handle, "hang")
            elif handle.state == DOWN and now >= handle.backoff_until:
                log = get_event_log()
                if log.enabled:
                    log.emit(
                        ev.CLUSTER_WORKER_RESTARTED,
                        worker=handle.worker_id,
                        restarts=handle.restarts,
                        backoff_s=handle.last_backoff_s,
                    )
                handle.spawn()
        if self._degraded and len(self.available()) == len(self.workers):
            self._degraded = False
            log = get_event_log()
            if log.enabled:
                log.emit(
                    ev.CLUSTER_HEALTH_OK,
                    available=len(self.available()),
                    total=len(self.workers),
                )
        self._set_available_gauge()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval_s):
            self._monitor_once()
