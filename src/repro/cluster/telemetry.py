"""The cluster's observability plane: federation, trace merge, events.

The gateway process is the only one an operator talks to, but the work
happens in N worker processes whose metrics, spans, and flight-recorder
events would otherwise be invisible.  This module is the gateway-side
receiving end of the three telemetry flows:

* :class:`MetricsFederation` — workers piggyback
  ``MetricsRegistry.export_state()`` snapshots on heartbeats; the
  federation re-labels every series with ``worker="<id>"`` and renders
  one cluster-wide Prometheus exposition.  Snapshots are *cumulative
  within a worker generation* (a process lifetime, keyed by pid): when
  a worker restarts, its counters restart from zero, so the federation
  **re-bases** — the previous generation's last snapshot folds into a
  per-worker base and the federated value is ``base + current``.
  Counters and histogram buckets therefore never go backward across a
  kill+restart; gauges are instantaneous and simply take the new
  generation's value.

* :class:`TraceCollector` — a bounded (LRU by trace id) store of
  completed span records.  Workers return their spans with each traced
  response, the router folds them in as they arrive (including every
  replica's spans on quorum reads and each attempt's on failover), the
  gateway adds its own, and :meth:`TraceCollector.chrome_trace` emits
  one merged Chrome trace-event JSON with per-process ``process_name``
  metadata — gateway and worker spans on one wall-clock axis under a
  single ``trace_id``.

* :class:`ClusterTelemetry` — the facade the gateway owns.  It hooks
  :attr:`Supervisor.on_telemetry`, routes each worker beat into the
  federation, adopts shipped flight-recorder events into the gateway's
  :class:`~repro.obs.events.EventLog` (tagged ``worker=<id>`` — the SSE
  ``events`` verb then streams cluster-wide events), counts shipping
  loss on ``ev_cluster_events_ship_dropped_total``, and keeps a
  per-worker summary (qps inputs, percentiles, backend, lag) behind
  the ``stats`` verb for ``repro cluster top``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import get_event_log
from repro.obs.registry import (
    LabelKey,
    _label_key,
    _render_labels,
    get_registry,
    merge_expositions,
)

__all__ = [
    "MetricsFederation",
    "TraceCollector",
    "ClusterTelemetry",
    "DEFAULT_TRACE_MAX_AGE_S",
    "TRACES_EVICTED_METRIC",
]

#: How many distinct traces the gateway retains (LRU eviction).
DEFAULT_MAX_TRACES = 64

#: How long an untouched trace survives before the age sweep drops it.
#: A trace that stops receiving records was abandoned mid-flight (the
#: client hung up, a worker died before returning its spans): without
#: an age bound it would sit in the store until enough *new* traces
#: arrived to push it out by LRU — on a quiet gateway, forever.
DEFAULT_TRACE_MAX_AGE_S = 300.0

#: Counter counting both LRU and age evictions, labelled by reason.
TRACES_EVICTED_METRIC = "ev_cluster_traces_evicted_total"


def _series_map(state: Dict[str, Any]) -> Dict[Tuple[str, LabelKey], Dict[str, Any]]:
    """Flatten an ``export_state()`` payload into
    ``{(metric, labelkey): {kind, help, buckets, value}}``."""
    out: Dict[Tuple[str, LabelKey], Dict[str, Any]] = {}
    for metric in state.get("metrics", []):
        name = str(metric.get("name", ""))
        if not name:
            continue
        kind = str(metric.get("kind", "untyped"))
        help_text = str(metric.get("help", ""))
        buckets = metric.get("buckets")
        for raw_key, value in metric.get("series", []):
            try:
                key: LabelKey = tuple(
                    (str(k), str(v)) for k, v in raw_key
                )
            except (TypeError, ValueError):
                continue
            out[(name, key)] = {
                "kind": kind,
                "help": help_text,
                "buckets": buckets,
                "value": value,
            }
    return out


def _add_values(kind: str, base: Any, current: Any) -> Any:
    """``base + current`` for a re-based series (kind-aware)."""
    if base is None:
        return current
    if kind == "histogram":
        if (
            not isinstance(base, dict)
            or not isinstance(current, dict)
            or len(base.get("bucket_counts", []))
            != len(current.get("bucket_counts", []))
        ):
            return current
        return {
            "bucket_counts": [
                b + c
                for b, c in zip(base["bucket_counts"], current["bucket_counts"])
            ],
            "sum": base.get("sum", 0.0) + current.get("sum", 0.0),
            "count": base.get("count", 0) + current.get("count", 0),
        }
    if kind == "gauge":
        # Gauges are instantaneous — a restarted worker's new reading
        # replaces the old one rather than accumulating.
        return current
    return float(base) + float(current)


class _WorkerSeries:
    """One worker's federated state: generation, base, latest snapshot."""

    __slots__ = ("generation", "base", "current", "last_update")

    def __init__(self) -> None:
        self.generation: Optional[int] = None
        self.base: Dict[Tuple[str, LabelKey], Dict[str, Any]] = {}
        self.current: Dict[Tuple[str, LabelKey], Dict[str, Any]] = {}
        self.last_update = 0.0


class MetricsFederation:
    """Merge per-worker registry snapshots into one labelled exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerSeries] = {}

    def update(
        self, worker_id: str, generation: Optional[int], state: Dict[str, Any]
    ) -> None:
        """Fold one worker beat in.  ``generation`` identifies the
        worker *process* (its pid): a change means the worker was
        restarted and its cumulative series re-base."""
        snapshot = _series_map(state)
        with self._lock:
            ws = self._workers.setdefault(worker_id, _WorkerSeries())
            if ws.generation is not None and generation != ws.generation:
                # Restart: the dead generation's last snapshot becomes
                # part of the base so federated counters keep rising.
                for key, entry in ws.current.items():
                    existing = ws.base.get(key)
                    merged = _add_values(
                        entry["kind"],
                        existing["value"] if existing else None,
                        entry["value"],
                    )
                    ws.base[key] = {**entry, "value": merged}
            ws.generation = generation
            ws.current = snapshot
            ws.last_update = time.time()

    def workers(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    def forget(self, worker_id: str) -> None:
        """Drop a worker's series entirely (it left the fleet)."""
        with self._lock:
            self._workers.pop(worker_id, None)

    def _rebased(
        self,
    ) -> Dict[str, Dict[Tuple[str, LabelKey], Dict[str, Any]]]:
        """``{worker: {(metric, labels): entry}}`` with bases applied."""
        with self._lock:
            workers = {
                wid: (dict(ws.base), dict(ws.current))
                for wid, ws in self._workers.items()
            }
        out: Dict[str, Dict[Tuple[str, LabelKey], Dict[str, Any]]] = {}
        for wid, (base, current) in workers.items():
            merged: Dict[Tuple[str, LabelKey], Dict[str, Any]] = {}
            for key in set(base) | set(current):
                base_entry = base.get(key)
                cur_entry = current.get(key)
                entry = cur_entry or base_entry
                assert entry is not None
                if cur_entry is not None and cur_entry["kind"] == "gauge":
                    value = cur_entry["value"]
                else:
                    value = _add_values(
                        entry["kind"],
                        base_entry["value"] if base_entry else None,
                        cur_entry["value"] if cur_entry else (
                            0.0 if entry["kind"] != "histogram" else None
                        ),
                    )
                    if value is None:
                        value = base_entry["value"] if base_entry else 0.0
                merged[key] = {**entry, "value": value}
            out[wid] = merged
        return out

    def counter_value(self, name: str, worker_id: Optional[str] = None) -> float:
        """The federated (re-based) total of one counter/gauge family,
        optionally restricted to a single worker — the test surface for
        "federated == sum of per-worker"."""
        total = 0.0
        for wid, series in self._rebased().items():
            if worker_id is not None and wid != worker_id:
                continue
            for (metric, _key), entry in series.items():
                if metric == name and entry["kind"] != "histogram":
                    total += float(entry["value"])
        return total

    def render(self) -> str:
        """Every worker's series as one exposition, each sample tagged
        with a ``worker`` label; family headers appear once."""
        rebased = self._rebased()
        # name -> {kind, help, buckets, rows: [(worker, labelkey, value)]}
        families: Dict[str, Dict[str, Any]] = {}
        for wid in sorted(rebased):
            for (metric, key), entry in sorted(rebased[wid].items()):
                fam = families.setdefault(
                    metric,
                    {
                        "kind": entry["kind"],
                        "help": entry["help"],
                        "buckets": entry.get("buckets"),
                        "rows": [],
                    },
                )
                fam["rows"].append((wid, key, entry["value"]))
        lines: List[str] = []
        for metric in sorted(families):
            fam = families[metric]
            if fam["help"]:
                lines.append(f"# HELP {metric} {fam['help']}")
            lines.append(f"# TYPE {metric} {fam['kind']}")
            for wid, key, value in fam["rows"]:
                labelled: LabelKey = _label_key(
                    {**dict(key), "worker": wid}
                )
                if fam["kind"] == "histogram" and isinstance(value, dict):
                    buckets = fam["buckets"] or []
                    cumulative = 0
                    counts = value.get("bucket_counts", [])
                    for bound, count in zip(buckets, counts):
                        cumulative += count
                        labels = _render_labels(labelled, f'le="{bound:g}"')
                        lines.append(f"{metric}_bucket{labels} {cumulative}")
                    if counts:
                        cumulative += counts[-1]
                    labels = _render_labels(labelled, 'le="+Inf"')
                    lines.append(f"{metric}_bucket{labels} {cumulative}")
                    lines.append(
                        f"{metric}_sum{_render_labels(labelled)} "
                        f"{value.get('sum', 0.0):g}"
                    )
                    lines.append(
                        f"{metric}_count{_render_labels(labelled)} "
                        f"{value.get('count', 0)}"
                    )
                else:
                    lines.append(
                        f"{metric}{_render_labels(labelled)} {float(value):g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


class TraceCollector:
    """Bounded store of completed distributed traces (LRU by trace id).

    Span *records* (the wall-clock wire form from
    :meth:`~repro.obs.tracing.Tracer.span_records`) arrive from workers
    via the router and from the gateway's own tracer; each trace's
    records become Chrome complete events as they land, so exporting a
    merged trace is a read, not a join.

    Two eviction paths keep the store bounded: LRU when the trace
    *count* exceeds ``max_traces``, and an age sweep dropping traces
    untouched for ``max_age_s`` (abandoned mid-flight traces would
    otherwise pin memory on a quiet gateway where LRU pressure never
    arrives).  Both increment :data:`TRACES_EVICTED_METRIC`, labelled
    ``reason="lru"`` / ``reason="age"``, and the per-reason tallies are
    mirrored on :attr:`evicted` for registry-free inspection.
    """

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_age_s: float = DEFAULT_TRACE_MAX_AGE_S,
        clock: Any = time.monotonic,
    ) -> None:
        if max_traces <= 0:
            raise ValueError(f"max_traces must be positive, got {max_traces}")
        if max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {max_age_s}")
        self.max_traces = max_traces
        self.max_age_s = max_age_s
        self._clock = clock
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        #: trace id -> last clock reading at which records arrived.
        #: ``_traces``'s LRU order and these timestamps agree (both are
        #: refreshed by the same touch), so the age sweep only ever has
        #: to look at the front of the OrderedDict.
        self._touched: Dict[str, float] = {}
        self._process_labels: Dict[int, str] = {}
        #: Per-reason eviction tallies (``lru`` / ``age``).
        self.evicted: Dict[str, int] = {"lru": 0, "age": 0}
        self._evicted_counter: Optional[Tuple[Any, Any]] = None

    def add_records(
        self,
        trace_id: str,
        records: List[Dict[str, Any]],
        label: Optional[str] = None,
    ) -> None:
        """Fold one process's span records into a trace.  ``label``
        names the originating process in the merged view."""
        if not trace_id or not records:
            return
        events: List[Dict[str, Any]] = []
        for record in records:
            try:
                name = str(record["name"])
                pid = int(record["pid"])
                event = {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "X",
                    "ts": float(record["ts_us"]),
                    "dur": float(record["dur_us"]),
                    "pid": pid,
                    "tid": int(record.get("tid", 0)),
                    "args": {
                        **dict(record.get("args") or {}),
                        "trace_id": trace_id,
                        "span_id": record.get("span_id"),
                        "parent_span_id": record.get("parent_span_id"),
                    },
                }
            except (KeyError, TypeError, ValueError):
                continue
            events.append(event)
        if not events:
            return
        now = self._clock()
        with self._lock:
            if label:
                for event in events:
                    self._process_labels[event["pid"]] = label
            bucket = self._traces.get(trace_id)
            if bucket is None:
                bucket = []
                self._traces[trace_id] = bucket
            bucket.extend(events)
            self._traces.move_to_end(trace_id)
            self._touched[trace_id] = now
            lru = 0
            while len(self._traces) > self.max_traces:
                victim, _ = self._traces.popitem(last=False)
                self._touched.pop(victim, None)
                lru += 1
            aged = self._sweep_locked(now)
        self._record_evictions("lru", lru)
        self._record_evictions("age", aged)

    def _sweep_locked(self, now: float) -> int:
        """Drop traces untouched for ``max_age_s`` (lock held)."""
        horizon = now - self.max_age_s
        aged = 0
        while self._traces:
            oldest = next(iter(self._traces))
            if self._touched.get(oldest, now) > horizon:
                break
            del self._traces[oldest]
            self._touched.pop(oldest, None)
            aged += 1
        return aged

    def _record_evictions(self, reason: str, count: int) -> None:
        if not count:
            return
        self.evicted[reason] = self.evicted.get(reason, 0) + count
        registry = get_registry()
        cached = self._evicted_counter
        if cached is None or cached[0] is not registry:
            counter = registry.counter(
                TRACES_EVICTED_METRIC,
                "Traces evicted from the gateway's bounded trace store",
            )
            self._evicted_counter = cached = (registry, counter)
        cached[1].inc(count, reason=reason)

    def evict_stale(self, now: Optional[float] = None) -> int:
        """Run the age sweep now; returns how many traces were dropped.

        ``now`` overrides the collector's clock reading so tests can
        advance time deterministically.  Also called from
        :meth:`ClusterTelemetry.describe`, so a gateway that is being
        *observed* sheds abandoned traces even with no new ones
        arriving.
        """
        with self._lock:
            aged = self._sweep_locked(self._clock() if now is None else now)
        self._record_evictions("age", aged)
        return aged

    def trace_ids(self) -> List[str]:
        """Known trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def latest_trace_id(self) -> Optional[str]:
        with self._lock:
            return next(reversed(self._traces), None)

    def chrome_trace(self, trace_id: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """One merged Chrome trace (latest trace when ``trace_id`` is
        ``None``); timestamps re-based to the trace's earliest span."""
        with self._lock:
            if trace_id is None:
                trace_id = next(reversed(self._traces), None)
            if trace_id is None or trace_id not in self._traces:
                return None
            events = [dict(e) for e in self._traces[trace_id]]
            labels = dict(self._process_labels)
        origin = min(e["ts"] for e in events)
        for event in events:
            event["ts"] -= origin
        events.sort(key=lambda e: (e["ts"], e["pid"]))
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": labels.get(pid, f"pid {pid}")},
            }
            for pid in sorted({e["pid"] for e in events})
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id},
        }


class ClusterTelemetry:
    """The gateway's receiving end of worker telemetry beats."""

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self.federation = MetricsFederation()
        self.traces = TraceCollector(max_traces=max_traces)
        self._lock = threading.Lock()
        self._summaries: Dict[str, Dict[str, Any]] = {}
        registry = get_registry()
        self._beats = registry.counter(
            "ev_cluster_telemetry_beats_total",
            "Worker telemetry beats folded into the federation",
        )
        self._events_ingested = registry.counter(
            "ev_cluster_events_ingested_total",
            "Worker flight-recorder events adopted by the gateway",
        )
        self._ship_dropped = registry.counter(
            "ev_cluster_events_ship_dropped_total",
            "Worker events lost before shipping (ring falloff or cap)",
        )

    def attach(self, supervisor: Any) -> "ClusterTelemetry":
        """Hook a :class:`~repro.cluster.supervisor.Supervisor`'s
        telemetry stream into this plane."""
        supervisor.on_telemetry = self.on_telemetry
        return self

    def on_telemetry(self, worker_id: str, payload: Dict[str, Any]) -> None:
        """One worker beat: metrics snapshot + shipped events + summary."""
        generation = payload.get("pid")
        state = payload.get("metrics")
        if isinstance(state, dict):
            self.federation.update(worker_id, generation, state)
        events = payload.get("events") or []
        if events:
            log = get_event_log()
            if log.enabled:
                for event in events:
                    if isinstance(event, dict):
                        log.ingest(event, worker=worker_id)
            self._events_ingested.inc(len(events), worker=worker_id)
        dropped = int(payload.get("events_dropped") or 0)
        if dropped:
            self._ship_dropped.inc(dropped, worker=worker_id)
        self._beats.inc(worker=worker_id)
        summary = payload.get("summary")
        with self._lock:
            self._summaries[worker_id] = {
                "received_ts": time.time(),
                "pid": generation,
                **(summary if isinstance(summary, dict) else {}),
            }

    def describe(self) -> Dict[str, Any]:
        """Per-worker summaries (with beat lag) for the ``stats`` verb."""
        self.traces.evict_stale()
        now = time.time()
        with self._lock:
            workers = {
                wid: {**summary, "lag_s": now - summary["received_ts"]}
                for wid, summary in self._summaries.items()
            }
        return {"workers": workers, "traces": len(self.traces.trace_ids())}

    def render_metrics(self, *local_texts: str) -> str:
        """The cluster-wide exposition: local registries first, then
        every worker's federated series, headers deduped by family."""
        return merge_expositions(list(local_texts) + [self.federation.render()])
