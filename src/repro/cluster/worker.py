"""The worker process: one crash-isolated :class:`MatchService` shard.

``worker_main`` is the child-process entry point the supervisor spawns
(``multiprocessing`` *spawn* context — a clean interpreter, no
inherited locks).  Each worker:

1. materialises its standing dataset — loads a saved ``.npz`` world or
   deterministically rebuilds one from an
   :class:`~repro.datagen.config.ExperimentConfig` (every replica of a
   seed builds the identical world, which is what makes quorum reads
   meaningful);
2. replays its **ingest journal** through the existing
   :class:`~repro.stream.pipeline.DurableStoreSink` reload path, so
   scenarios accepted before a crash survive the restart;
3. stands up a :class:`~repro.service.server.MatchService` and serves
   length-prefixed JSON frames (:mod:`repro.cluster.protocol`) on a
   local TCP socket, one handler thread per connection;
4. heartbeats over the control pipe so the supervisor can tell a hung
   worker from a busy one.

The control pipe carries exactly three child→parent message types —
``ready`` (with the bound port), ``heartbeat``, and ``stopped`` — and
one parent→child type, ``shutdown``.  Everything else rides the data
socket.  Heartbeats periodically **piggyback a telemetry payload**
(``WorkerSpec.telemetry_interval_s``): a cumulative
``MetricsRegistry.export_state()`` snapshot, a bounded batch of
flight-recorder events (shed-counting, never blocking the data
plane — :class:`~repro.obs.events.EventShipper`), and a small summary
(request counts, latency percentiles, backend) — the raw feed of the
gateway's federated ``metrics`` / ``stats`` / SSE ``events`` verbs.

Tracing: when a data-verb message carries a trace envelope
(:func:`~repro.obs.tracing.extract_trace`), the worker opens its
``worker.request`` root span under the remote parent, the service and
pipeline spans nest beneath it, and the completed span records travel
back in the response's ``"spans"`` field so the gateway can merge one
cluster-wide Chrome trace.  Untraced requests still get a local trace
id so their spans can be discarded after the response — the tracer's
retained set stays bounded by in-flight work.

Fault injection: the ``crash`` verb calls ``os._exit``, giving tests
and the availability benchmark a deterministic way to kill a worker
*mid-protocol* rather than between requests.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cluster import codec
from repro.cluster.protocol import (
    ConnectionClosed,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.obs.events import (
    EventLog,
    EventShipper,
    get_event_log,
    set_event_log,
)
from repro.obs.profiler import (
    MAX_PROFILE_HZ,
    SamplingProfiler,
    set_profiler,
)
from repro.obs.registry import get_registry
from repro.obs.tracing import (
    TraceContext,
    Tracer,
    extract_trace,
    get_tracer,
    new_trace_id,
    set_tracer,
)
from repro.service.api import STATUS_OK, IngestTickResponse
from repro.service.server import MatchService, ServiceConfig

#: Child → parent control-pipe message types.
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_STOPPED = "stopped"
#: Parent → child.
MSG_SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs (must pickle cleanly).

    Attributes:
        worker_id: stable name; survives restarts (it is the ring
            node identity).
        config: build this synthetic world on startup (deterministic —
            every worker with the same config holds the same data).
        dataset_path: or load a saved ``.npz`` world instead.
        journal_path: JSONL ingest journal; replayed on startup via
            :class:`~repro.stream.pipeline.DurableStoreSink` and
            appended to on every accepted ingest, so restarts rebuild
            the post-ingest store.  ``None`` disables durability.
        service: the in-worker serving knobs (thread count, queue,
            cache, matcher configuration).
        host: interface to bind the data socket on.
        heartbeat_interval_s: control-pipe heartbeat cadence.
        request_result_timeout_s: bound on one service future.
        obs: stand up a real in-worker :class:`~repro.obs.EventLog` +
            :class:`~repro.obs.Tracer` at startup (spawned children
            start with the process-global no-ops).  Required for the
            distributed observability plane; ``False`` keeps the
            worker dark (telemetry beats then carry metrics only).
        telemetry_interval_s: how often a heartbeat piggybacks a
            telemetry payload; ``0`` disables telemetry entirely.
        max_events_per_beat: flight-recorder events shipped per
            telemetry beat at most; overflow is shed and counted.
        profile_hz: continuous-profiling sample rate; ``0`` (default)
            keeps the worker unprofiled.  A profiled worker answers
            the ``profile`` verb with its aggregated collapsed stacks
            (requires ``obs``, which provides the tracer whose spans
            label the samples).
        use_topology: enable camera-graph reachability pruning and the
            transition prior on this worker's V stage, using the
            fitted :class:`~repro.topology.transit.TransitModel` the
            loaded world carries.  A world without a fitted graph
            (pre-topology ``.npz`` files) serves topology-blind and
            reports ``enabled: false`` in the ``ready`` message and
            the ``stats`` verb.
    """

    worker_id: str
    config: Optional[object] = None  # ExperimentConfig (kept untyped: pickle)
    dataset_path: Optional[str] = None
    journal_path: Optional[str] = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    host: str = "127.0.0.1"
    heartbeat_interval_s: float = 0.25
    request_result_timeout_s: float = 120.0
    obs: bool = True
    telemetry_interval_s: float = 1.0
    max_events_per_beat: int = 256
    profile_hz: float = 0.0
    use_topology: bool = False

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("worker_id must be non-empty")
        if (self.config is None) == (self.dataset_path is None):
            raise ValueError(
                "exactly one of config / dataset_path must be given"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.telemetry_interval_s < 0:
            raise ValueError(
                f"telemetry_interval_s must be >= 0, "
                f"got {self.telemetry_interval_s}"
            )
        if self.max_events_per_beat <= 0:
            raise ValueError(
                f"max_events_per_beat must be positive, "
                f"got {self.max_events_per_beat}"
            )
        if not 0 <= self.profile_hz <= MAX_PROFILE_HZ:
            raise ValueError(
                f"profile_hz must be in [0, {MAX_PROFILE_HZ:.0f}], "
                f"got {self.profile_hz}"
            )


def _pick_backend(spec: WorkerSpec) -> tuple:
    """(service_config, backend) — the worker's kernel backend choice.

    Workers are throughput shards: the pure-Python reference kernels
    exist for in-process debugging, not for serving.  A spec whose
    matcher config leaves the E-stage backends at their defaults (or
    pins ``"auto"``) therefore gets the fastest backend available in
    *this* child interpreter — each worker probes independently at
    startup, so a heterogeneous fleet (some nodes with numba
    installed, some without) just works.  An explicit ``"bitset"`` /
    ``"numba"`` pin is respected, still routed through
    :func:`~repro.core.accel.resolve_backend` so a numba pin on a
    node without numba degrades to ``"bitset"`` with a warning
    instead of dying.  The choice is reported in the ``ready``
    control message and the ``stats`` verb.
    """
    from dataclasses import replace

    from repro.core.accel import AUTO_BACKEND, resolve_backend

    matcher = spec.service.matcher
    split_b = matcher.split.backend
    edp_b = matcher.edp.backend
    split_r = resolve_backend(
        AUTO_BACKEND
        if split_b in (AUTO_BACKEND, type(matcher.split)().backend)
        else split_b
    )
    edp_r = resolve_backend(
        AUTO_BACKEND
        if edp_b in (AUTO_BACKEND, type(matcher.edp)().backend)
        else edp_b
    )
    if split_r == split_b and edp_r == edp_b:
        return spec.service, split_r
    return (
        replace(
            spec.service,
            matcher=replace(
                matcher,
                split=replace(matcher.split, backend=split_r),
                edp=replace(matcher.edp, backend=edp_r),
            ),
        ),
        split_r,
    )


def _build_service(spec: WorkerSpec) -> tuple:
    """(service, reloaded, backend, topology) — standing dataset +
    journal + the kernel backend this worker picked (see
    :func:`_pick_backend`) + the topology summary (``None`` unless
    ``spec.use_topology``)."""
    if spec.dataset_path is not None:
        from repro.datagen.io import load_dataset

        dataset = load_dataset(spec.dataset_path)
    else:
        from repro.datagen.dataset import build_dataset

        dataset = build_dataset(spec.config)
    reloaded = 0
    if spec.journal_path is not None:
        from repro.stream.pipeline import DurableStoreSink

        # Reload-only use: journal appends go through _append_journal so
        # ingest stays on the service path (shards + watch + cache).
        sink = DurableStoreSink(dataset.store, spec.journal_path)
        reloaded = sink.reloaded
    service_config, backend = _pick_backend(spec)
    topology = None
    if spec.use_topology:
        model = getattr(dataset, "topology", None)
        if model is None:
            # The world predates topology fitting; serve topology-blind
            # rather than dying — the summary says so out loud.
            topology = {"enabled": False}
        else:
            from dataclasses import replace

            from repro.topology import TopologyConfig

            matcher = service_config.matcher
            service_config = replace(
                service_config,
                matcher=replace(
                    matcher,
                    filter=replace(
                        matcher.filter, topology=TopologyConfig(model=model)
                    ),
                ),
            )
            topology = {"enabled": True, **model.describe()}
    service = MatchService(
        dataset.store,
        grid=dataset.grid,
        universe=dataset.eids,
        config=service_config,
    )
    return service, reloaded, backend, topology


class _WorkerServer:
    """The in-child server: data socket + control pipe + lifecycle."""

    def __init__(self, spec: WorkerSpec, control) -> None:
        self.spec = spec
        self.control = control
        self.stop_event = threading.Event()
        self.service: Optional[MatchService] = None
        self.backend: str = "python"  # resolved in run()
        self.topology: Optional[Dict[str, Any]] = None  # resolved in run()
        self._journal_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._shipper: Optional[EventShipper] = None
        self._profiler: Optional[SamplingProfiler] = None

    # -- control pipe ----------------------------------------------------
    def _control_send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            try:
                self.control.send(message)
            except (OSError, ValueError, BrokenPipeError):
                # Parent is gone; nothing to report to, so wind down.
                self.stop_event.set()

    def _heartbeat_loop(self) -> None:
        telemetry_due = 0.0  # first eligible beat carries telemetry
        while not self.stop_event.wait(self.spec.heartbeat_interval_s):
            message: Dict[str, Any] = {"type": MSG_HEARTBEAT, "ts": time.time()}
            if (
                self.spec.telemetry_interval_s > 0
                and time.monotonic() >= telemetry_due
            ):
                try:
                    message["telemetry"] = self._telemetry_payload()
                except Exception:
                    # Telemetry must never take the heartbeat (and with
                    # it the worker) down.
                    pass
                telemetry_due = (
                    time.monotonic() + self.spec.telemetry_interval_s
                )
            self._control_send(message)

    def _telemetry_payload(self) -> Dict[str, Any]:
        """One beat's worth of cumulative metrics + fresh events.

        Metrics snapshots are cumulative within this process lifetime;
        the supervisor-side federation re-bases across restarts using
        ``pid`` as the generation marker.
        """
        states = [get_registry().export_state()]
        summary: Dict[str, Any] = {
            "backend": self.backend,
            "scenarios": 0,
        }
        if self.service is not None:
            states.append(self.service.metrics.registry.export_state())
            summary["scenarios"] = len(self.service.store)
            metrics = self.service.metrics
            summary["requests"] = metrics.requests.total()
            outcomes = {"ok": 0.0, "shed": 0.0, "error": 0.0}
            for key, value in metrics.responses.series():
                outcome = dict(key).get("outcome", "error")
                outcomes[outcome] = outcomes.get(outcome, 0.0) + value
            summary.update(
                ok=outcomes["ok"], shed=outcomes["shed"],
                errors=outcomes["error"],
            )
            latency = metrics.latency.percentiles(endpoint="match")
            summary.update(
                p50_ms=latency["p50"] * 1e3,
                p95_ms=latency["p95"] * 1e3,
                p99_ms=latency["p99"] * 1e3,
            )
        events: list = []
        events_dropped = 0
        if self._shipper is not None:
            events, events_dropped = self._shipper.collect()
        return {
            "pid": os.getpid(),
            "backend": self.backend,
            "metrics": {"metrics": [
                m for state in states for m in state["metrics"]
            ]},
            "events": events,
            "events_dropped": events_dropped,
            "summary": summary,
        }

    def _control_loop(self) -> None:
        while not self.stop_event.is_set():
            try:
                if self.control.poll(0.1):
                    message = self.control.recv()
                    if (
                        isinstance(message, dict)
                        and message.get("type") == MSG_SHUTDOWN
                    ):
                        self.stop_event.set()
            except (EOFError, OSError):
                self.stop_event.set()

    # -- request handling ------------------------------------------------
    def _append_journal(self, scenarios) -> None:
        if self.spec.journal_path is None or not scenarios:
            return
        from repro.stream.checkpoint import scenario_to_json

        with self._journal_lock:
            with open(self.spec.journal_path, "a", encoding="utf-8") as fh:
                for scenario in scenarios:
                    fh.write(json.dumps(scenario_to_json(scenario)) + "\n")

    def _handle_ingest(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request = codec.request_from_wire(message)
        with self._journal_lock:
            fresh = [
                s for s in request.scenarios
                if s.key not in self.service.store
            ]
        duplicates = len(request.scenarios) - len(fresh)
        if fresh:
            response = self.service.ingest_tick(fresh)
            if response.status == STATUS_OK:
                self._append_journal(fresh)
        else:
            response = IngestTickResponse(status=STATUS_OK, ingested=0)
        wire = codec.response_to_wire(response)
        wire["duplicates"] = duplicates
        return wire

    def _handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        verb = message.get("verb")
        if verb == "ping":
            return {
                "verb": "ping",
                "status": "ok",
                "worker": self.spec.worker_id,
                "pid": os.getpid(),
            }
        if verb == "crash":  # fault injection (tests / availability bench)
            os._exit(int(message.get("code", 13)))
        if verb == MSG_SHUTDOWN:
            self.stop_event.set()
            return {"verb": MSG_SHUTDOWN, "status": "ok"}
        if verb == "stats":
            return {
                "verb": "stats",
                "status": "ok",
                "worker": self.spec.worker_id,
                "backend": self.backend,
                "topology": self.topology,
                "snapshot": self.service.stats().snapshot,
            }
        if verb == "metrics":
            return {
                "verb": "metrics",
                "status": "ok",
                "worker": self.spec.worker_id,
                "text": self.service.metrics_text().text,
            }
        if verb == "health":
            wire = codec.response_to_wire(self.service.health())
            wire["worker"] = self.spec.worker_id
            return wire
        if verb == "profile":
            if self._profiler is None:
                return codec.error_response(
                    "profile",
                    "profiling disabled on this worker "
                    "(set WorkerSpec.profile_hz > 0)",
                )
            snapshot = self._profiler.snapshot()
            return {
                "verb": "profile",
                "status": "ok",
                "worker": self.spec.worker_id,
                "profile": snapshot.to_wire(),
            }
        if verb == "slowlog":
            raw_limit = message.get("limit")
            payload = self.service.slowlog(
                limit=None if raw_limit is None else int(raw_limit)
            )
            payload["backend_label"] = self.backend
            return {
                "verb": "slowlog",
                "status": "ok",
                "worker": self.spec.worker_id,
                "slowlog": payload,
            }
        if verb in ("ingest", "match", "investigate"):
            return self._handle_data(message, verb)
        raise codec.CodecError(f"unknown verb {verb!r}")

    def _dispatch_data(self, message: Dict[str, Any], verb: str) -> Dict[str, Any]:
        if verb == "ingest":
            return self._handle_ingest(message)
        request = codec.request_from_wire(message)
        response = self.service.submit(request).result(
            timeout=self.spec.request_result_timeout_s
        )
        return codec.response_to_wire(response)

    def _handle_data(self, message: Dict[str, Any], verb: str) -> Dict[str, Any]:
        """A data verb under a ``worker.request`` root span.

        When the message carries a trace envelope the span tree adopts
        the remote trace id + parent and the finished records ride back
        in the response.  Untraced requests get a throwaway local trace
        id so their spans can still be popped off the tracer — a
        long-running worker's span retention stays bounded either way.
        """
        tracer = get_tracer()
        if not isinstance(tracer, Tracer):
            return self._dispatch_data(message, verb)
        remote = extract_trace(message)
        local = remote if remote is not None else TraceContext(new_trace_id())
        try:
            with tracer.remote_context(local):
                with tracer.span(
                    "worker.request", verb=verb, worker=self.spec.worker_id
                ):
                    response = self._dispatch_data(message, verb)
        finally:
            # Pop the trace's spans even when the dispatch raised —
            # otherwise an erroring request (whose trace is never
            # collected) leaks its spans into the tracer forever.
            spans = tracer.take_trace(local.trace_id)
        if remote is not None:
            response["trace_id"] = remote.trace_id
            response["spans"] = tracer.span_records(spans)
        return response

    def _connection_loop(self, sock: socket.socket) -> None:
        try:
            while not self.stop_event.is_set():
                try:
                    message = recv_frame(sock)
                except (ConnectionClosed, OSError):
                    return
                try:
                    response = self._handle_message(message)
                except (codec.CodecError, ProtocolError) as exc:
                    response = codec.error_response(
                        str(message.get("verb", "?")), str(exc)
                    )
                except Exception as exc:  # service-side failure: report it
                    response = codec.error_response(
                        str(message.get("verb", "?")),
                        f"{type(exc).__name__}: {exc}",
                    )
                try:
                    send_frame(sock, response)
                except OSError:
                    return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # -- lifecycle -------------------------------------------------------
    def run(self) -> None:
        if self.spec.obs:
            # Spawned children start with the global no-ops; a real log
            # + tracer here is what the telemetry beats and returned
            # span records feed from.
            log = get_event_log()
            if not log.enabled:
                log = EventLog()
                set_event_log(log)
            if not isinstance(get_tracer(), Tracer):
                set_tracer(Tracer())
            self._shipper = EventShipper(
                log, max_per_collect=self.spec.max_events_per_beat
            )
        if self.spec.profile_hz > 0:
            # Continuous self-profiling: the sampler runs for the
            # worker's whole lifetime; the ``profile`` verb snapshots
            # it on demand.
            self._profiler = SamplingProfiler(
                hz=self.spec.profile_hz, tag=self.spec.worker_id
            ).start()
            set_profiler(self._profiler)
        service, reloaded, self.backend, self.topology = _build_service(
            self.spec
        )
        self.service = service.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.spec.host, 0))
        listener.listen(64)
        listener.settimeout(0.2)
        port = listener.getsockname()[1]
        self._control_send(
            {
                "type": MSG_READY,
                "port": port,
                "pid": os.getpid(),
                "reloaded": reloaded,
                "backend": self.backend,
                "topology": self.topology,
                "scenarios": len(self.service.store),
            }
        )
        threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat", daemon=True
        ).start()
        threading.Thread(
            target=self._control_loop, name="worker-control", daemon=True
        ).start()
        try:
            while not self.stop_event.is_set():
                try:
                    sock, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                threading.Thread(
                    target=self._connection_loop,
                    args=(sock,),
                    name="worker-conn",
                    daemon=True,
                ).start()
        finally:
            listener.close()
            if self._profiler is not None:
                self._profiler.stop()
            # Drain in-flight work before exiting so a graceful stop
            # loses no accepted requests.
            self.service.stop(timeout=10.0)
            self._control_send({"type": MSG_STOPPED})
            try:
                self.control.close()
            except OSError:
                pass


def worker_main(spec: WorkerSpec, control) -> None:
    """Child-process entry point (spawned by the supervisor)."""
    # The supervisor coordinates shutdown over the control pipe; a
    # terminal Ctrl-C must not tear workers down mid-request.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = _WorkerServer(spec, control)
    signal.signal(signal.SIGTERM, lambda *_: server.stop_event.set())
    server.run()
