"""The MapReduce engine: split -> map -> shuffle -> reduce.

Executes :class:`~repro.mapreduce.job.MapReduceJob` over datasets in
the :class:`~repro.mapreduce.storage.InMemoryDFS`:

* **split** — the input dataset's partitions are the map tasks (the
  DFS already stores data in blocks, as HDFS does);
* **map** — each task runs the mapper over its block, applies the
  optional combiner, and writes one shuffle bucket per reducer;
* **shuffle** — each reduce task gathers its bucket from every map
  output and groups values by key (sorted);
* **reduce** — the reducer runs per key group; outputs become the
  partitions of the output dataset.

Task attempts go through the :class:`~repro.mapreduce.failures.FailureInjector`
and are retried up to the policy's ``max_attempts`` — the master-side
"task failure recovery" of Sec. V-A.  Real execution runs serially or
on a thread pool; *simulated* stage times come from scheduling each
task's accumulated cost onto the :class:`~repro.mapreduce.cluster.SimulatedCluster`
(failed attempts are charged too: a retried task occupied a slot).
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.mapreduce.cluster import SimulatedCluster
from repro.obs import get_event_log, get_registry, get_tracer
from repro.obs import events as ev
from repro.mapreduce.failures import (
    FailureInjector,
    FailurePolicy,
    InjectedTaskFailure,
)
from repro.mapreduce.job import JobMetrics, MapReduceJob
from repro.mapreduce.shuffle import HashPartitioner, bucket_pairs, merge_buckets
from repro.mapreduce.storage import DatasetHandle, InMemoryDFS


class JobFailedError(RuntimeError):
    """A task exhausted its attempts; the job is dead."""


class MapReduceEngine:
    """Runs jobs over a DFS on a (simulated) cluster.

    Args:
        dfs: the storage layer; a fresh one is created if omitted.
        cluster: resource shape for simulated-time scheduling.
        failure_policy: injected-fault configuration (default: none).
        executor: ``"serial"`` or ``"threads"``.  Threads give real
            concurrency for numpy-heavy tasks; simulated times are
            identical either way, by construction.
        max_workers: thread-pool width for the ``"threads"`` executor
            (default: the cluster's slot count, capped at 16).
    """

    def __init__(
        self,
        dfs: Optional[InMemoryDFS] = None,
        cluster: Optional[SimulatedCluster] = None,
        failure_policy: Optional[FailurePolicy] = None,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ) -> None:
        self.cluster = cluster if cluster is not None else SimulatedCluster()
        self.dfs = (
            dfs
            if dfs is not None
            else InMemoryDFS(num_nodes=self.cluster.config.num_nodes)
        )
        self.injector = FailureInjector(
            failure_policy if failure_policy is not None else FailurePolicy()
        )
        if executor not in ("serial", "threads"):
            raise ValueError(f"unknown executor {executor!r}")
        self.executor = executor
        if max_workers is None:
            max_workers = min(self.cluster.config.total_slots, 16)
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        input_name: str,
        output_name: str,
    ) -> Tuple[DatasetHandle, JobMetrics]:
        """Execute ``job`` reading ``input_name``, writing ``output_name``."""
        started = time.perf_counter()
        metrics = JobMetrics(job_name=job.name)
        num_map_tasks = self.dfs.num_partitions(input_name)
        metrics.records_in = self.dfs.handle(input_name).num_records

        with get_tracer().span(
            "mr.job", job=job.name, map_tasks=num_map_tasks
        ) as span:
            if job.reducer is None:
                handle = self._run_map_only(job, input_name, output_name, metrics)
            else:
                handle = self._run_full(job, input_name, output_name, metrics)
            metrics.map_tasks = num_map_tasks
            metrics.wall_time = time.perf_counter() - started
            metrics.records_out = handle.num_records
            span.set(
                records_in=metrics.records_in,
                records_out=metrics.records_out,
                pairs_shuffled=metrics.pairs_shuffled,
            )
        self._publish_job_metrics(metrics)
        return handle, metrics

    def _publish_job_metrics(self, metrics: JobMetrics) -> None:
        """Fold one job's counters into the default metrics registry."""
        reg = get_registry()
        reg.counter("mr_jobs_total", "MapReduce jobs completed").inc()
        reg.counter(
            "mr_records_in_total", "Records read by MapReduce jobs"
        ).inc(metrics.records_in)
        reg.counter(
            "mr_records_out_total", "Records written by MapReduce jobs"
        ).inc(metrics.records_out)
        reg.counter(
            "mr_pairs_shuffled_total", "Key/value pairs moved in shuffles"
        ).inc(metrics.pairs_shuffled)
        tasks = reg.counter("mr_tasks_total", "Tasks that ran, by stage")
        retries = reg.counter(
            "mr_task_retries_total", "Failed attempts that were retried, by stage"
        )
        tasks.inc(metrics.map_tasks, stage="map")
        retries.inc(max(0, metrics.map_attempts - metrics.map_tasks), stage="map")
        if metrics.reduce_tasks:
            tasks.inc(metrics.reduce_tasks, stage="reduce")
            retries.inc(
                max(0, metrics.reduce_attempts - metrics.reduce_tasks),
                stage="reduce",
            )
        sim = reg.counter(
            "mr_simulated_seconds_total",
            "Simulated stage makespan accumulated by jobs, by stage",
        )
        spec = reg.counter(
            "mr_speculative_copies_total", "Speculative backup copies launched"
        )
        log = get_event_log()
        for stage, stats in (
            ("map", metrics.map_stats),
            ("reduce", metrics.reduce_stats),
        ):
            if stats is None:
                continue
            sim.inc(stats.makespan, stage=stage)
            if stats.speculative_copies:
                spec.inc(stats.speculative_copies, stage=stage)
                if log.enabled:
                    log.emit(
                        ev.MR_STAGE_SPECULATION,
                        job=metrics.job_name,
                        stage=stage,
                        speculative_copies=stats.speculative_copies,
                        wasted_work=getattr(stats, "wasted_work", 0.0),
                        makespan=stats.makespan,
                    )
        if log.enabled:
            log.emit(
                ev.MR_JOB_FINISHED,
                job=metrics.job_name,
                map_tasks=metrics.map_tasks,
                reduce_tasks=metrics.reduce_tasks,
                map_retries=max(0, metrics.map_attempts - metrics.map_tasks),
                reduce_retries=max(
                    0, metrics.reduce_attempts - metrics.reduce_tasks
                ),
                records_in=metrics.records_in,
                records_out=metrics.records_out,
                pairs_shuffled=metrics.pairs_shuffled,
            )

    # ------------------------------------------------------------------
    def _run_map_only(
        self,
        job: MapReduceJob,
        input_name: str,
        output_name: str,
        metrics: JobMetrics,
    ) -> DatasetHandle:
        """Narrow job: mapper output keeps the input partitioning."""

        def task(index: int) -> Tuple[List[Any], float]:
            records = self.dfs.read_partition(input_name, index)
            output: List[Any] = []
            cost = 0.0
            for record in records:
                for pair in job.mapper(record):
                    output.append(pair)
                if job.map_cost is not None:
                    cost += job.map_cost(record)
            return output, cost

        num_tasks = self.dfs.num_partitions(input_name)
        results, attempts, costs = self._run_tasks(
            job.name + ":map", task, num_tasks
        )
        metrics.map_attempts = attempts
        metrics.map_stats = self.cluster.simulate(
            costs, job.name + ":map", self._map_placements(input_name, len(costs))
        )
        return self.dfs.write(output_name, results)

    def _run_full(
        self,
        job: MapReduceJob,
        input_name: str,
        output_name: str,
        metrics: JobMetrics,
    ) -> DatasetHandle:
        """Shuffled job: map, bucket, merge, reduce."""
        partitioner = (
            job.partitioner
            if job.partitioner is not None
            else HashPartitioner(job.num_reducers)
        )
        num_reducers = partitioner.num_partitions

        def map_task(index: int) -> Tuple[List[List[Tuple[Hashable, Any]]], float]:
            records = self.dfs.read_partition(input_name, index)
            pairs: List[Tuple[Hashable, Any]] = []
            cost = 0.0
            for record in records:
                pairs.extend(job.mapper(record))
                if job.map_cost is not None:
                    cost += job.map_cost(record)
            if job.combiner is not None:
                pairs = self._combine(job, pairs)
            return bucket_pairs(pairs, partitioner), cost

        num_map_tasks = self.dfs.num_partitions(input_name)
        map_results, map_attempts, map_costs = self._run_tasks(
            job.name + ":map", map_task, num_map_tasks
        )
        metrics.map_attempts = map_attempts
        metrics.map_stats = self.cluster.simulate(
            map_costs, job.name + ":map", self._map_placements(input_name, len(map_costs))
        )
        all_buckets = map_results
        metrics.pairs_shuffled = sum(
            len(bucket) for buckets in all_buckets for bucket in buckets
        )

        key_order = job.key_order if job.key_order is not None else repr

        def reduce_task(index: int) -> Tuple[List[Any], float]:
            grouped = merge_buckets(all_buckets, index)
            output: List[Any] = []
            cost = 0.0
            assert job.reducer is not None
            for key in sorted(grouped.keys(), key=key_order):
                values = grouped[key]
                output.extend(job.reducer(key, values))
                if job.reduce_cost is not None:
                    cost += job.reduce_cost(key, values)
            return output, cost

        reduce_results, reduce_attempts, reduce_costs = self._run_tasks(
            job.name + ":reduce", reduce_task, num_reducers
        )
        metrics.reduce_tasks = num_reducers
        metrics.reduce_attempts = reduce_attempts
        metrics.reduce_stats = self.cluster.simulate(
            reduce_costs, job.name + ":reduce"
        )
        return self.dfs.write(output_name, reduce_results)

    def _map_placements(self, input_name: str, num_costs: int):
        """Block-home nodes per map attempt, for delay scheduling.

        Retried attempts (num_costs > partitions) disable locality
        accounting — attribution of attempts to blocks is ambiguous.
        """
        num_partitions = self.dfs.num_partitions(input_name)
        if num_costs != num_partitions:
            return None
        return [self.dfs.node_of(input_name, i) for i in range(num_partitions)]

    @staticmethod
    def _combine(
        job: MapReduceJob, pairs: Sequence[Tuple[Hashable, Any]]
    ) -> List[Tuple[Hashable, Any]]:
        """Map-side combining: group this task's pairs, re-emit."""
        grouped: Dict[Hashable, List[Any]] = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        combined: List[Tuple[Hashable, Any]] = []
        assert job.combiner is not None
        for key in sorted(grouped.keys(), key=repr):
            combined.extend(job.combiner(key, grouped[key]))
        return combined

    # ------------------------------------------------------------------
    def _run_tasks(
        self,
        stage_id: str,
        task: Callable[[int], Tuple[Any, float]],
        num_tasks: int,
    ) -> Tuple[List[Any], int, List[float]]:
        """Run one stage's tasks with retry; returns (results, attempts, costs).

        ``costs`` has one entry per *attempt* (failed attempts occupied
        a slot too), which is what the simulated scheduler charges.
        """
        attempts_total = 0
        costs: List[float] = []
        tracer = get_tracer()

        def attempt_task(index: int) -> Tuple[Any, float, int, List[float]]:
            policy = self.injector.policy
            local_costs: List[float] = []
            with tracer.span("mr.task", stage=stage_id, task=index) as span:
                for attempt in range(1, policy.max_attempts + 1):
                    try:
                        self.injector.check(stage_id, index, attempt)
                        result, cost = task(index)
                        local_costs.append(cost)
                        span.set(attempts=attempt, sim_cost=cost)
                        return result, cost, attempt, local_costs
                    except InjectedTaskFailure:
                        # The dead attempt still burned a slot for roughly
                        # the task's duration; charge it when the task
                        # eventually succeeds (cost known then).
                        local_costs.append(-1.0)
                        log = get_event_log()
                        if log.enabled:
                            log.emit(
                                ev.MR_TASK_RETRY,
                                stage=stage_id,
                                task=index,
                                attempt=attempt,
                                max_attempts=policy.max_attempts,
                            )
                        continue
                raise JobFailedError(
                    f"{stage_id} task {index} failed {policy.max_attempts} attempts"
                )

        with tracer.span("mr.stage", stage=stage_id, tasks=num_tasks):
            if self.executor == "threads" and num_tasks > 1:
                # Worker threads start with an empty contextvars context,
                # which would orphan the task spans; snapshot the caller's
                # context (holding the current stage span) per task so each
                # mr.task span parents correctly regardless of which thread
                # runs it.
                contexts = [
                    contextvars.copy_context() for _ in range(num_tasks)
                ]
                with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    outcomes = list(
                        pool.map(
                            lambda i: contexts[i].run(attempt_task, i),
                            range(num_tasks),
                        )
                    )
            else:
                outcomes = [attempt_task(i) for i in range(num_tasks)]

        results: List[Any] = []
        for result, cost, attempts, local_costs in outcomes:
            results.append(result)
            attempts_total += attempts
            # Failed attempts are charged at the successful attempt's cost.
            costs.extend(cost if c < 0 else c for c in local_costs)
        return results, attempts_total, costs
