"""Simulated cluster: nodes, worker slots, and makespan scheduling.

The paper evaluates on "a cluster with 14 machines[, e]ach ... a
four-core (2.4 GHz) processor" (Sec. VI-A).  We model exactly that
resource shape: ``num_nodes`` nodes of ``cores_per_node`` slots.  Real
execution parallelism (threads) is handled by the engine; this module
answers the *simulated-time* question — if every task ``i`` costs
``c_i`` seconds of one core, how long does the stage take on this
cluster? — via greedy list scheduling (each task goes to the
earliest-free slot), which is how Hadoop/Spark's slot schedulers behave
for independent tasks within a stage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mapreduce.speculation import SkewModel, StagePolicy, simulate_stage


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster resource shape.

    Attributes:
        num_nodes: machines in the cluster (paper: 14).
        cores_per_node: concurrent task slots per machine (paper: 4).
        task_overhead: fixed per-task scheduling/launch cost in
            simulated seconds (JVM-less, but task dispatch is never
            free; keeps tiny-task stages from showing impossible
            speedups).
        skew_sigma: lognormal task-duration noise (0 = deterministic
            durations; see :class:`~repro.mapreduce.speculation.SkewModel`).
        skew_seed: determinism root for the skew draws.
        speculate: enable speculative backup copies for stragglers.
        locality_wait: delay-scheduling wait for a data-local slot.
        remote_read_penalty: extra seconds a non-local map task pays.
    """

    num_nodes: int = 14
    cores_per_node: int = 4
    task_overhead: float = 0.01
    skew_sigma: float = 0.0
    skew_seed: int = 0
    speculate: bool = False
    locality_wait: float = 0.0
    remote_read_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.cores_per_node <= 0:
            raise ValueError(
                f"cores_per_node must be positive, got {self.cores_per_node}"
            )
        if self.task_overhead < 0:
            raise ValueError(
                f"task_overhead must be non-negative, got {self.task_overhead}"
            )
        if self.skew_sigma < 0:
            raise ValueError(
                f"skew_sigma must be non-negative, got {self.skew_sigma}"
            )
        if self.locality_wait < 0 or self.remote_read_penalty < 0:
            raise ValueError("locality knobs must be non-negative")

    @property
    def total_slots(self) -> int:
        return self.num_nodes * self.cores_per_node


@dataclass
class TaskStats:
    """Per-stage scheduling outcome.

    Attributes:
        num_tasks: tasks scheduled in the stage.
        serial_cost: total simulated core-seconds of the stage.
        makespan: simulated wall time of the stage on the cluster.
        slot_utilization: fraction of slot-time actually busy during
            the makespan (1.0 = perfectly balanced stage).
        per_slot_busy: busy seconds of each slot, for skew inspection.
        speculative_copies / wasted_work / local_tasks / remote_tasks:
            populated by :meth:`SimulatedCluster.simulate` when skew,
            speculation or locality are configured.
    """

    num_tasks: int
    serial_cost: float
    makespan: float
    slot_utilization: float
    per_slot_busy: Tuple[float, ...]
    speculative_copies: int = 0
    wasted_work: float = 0.0
    local_tasks: int = 0
    remote_tasks: int = 0


class SimulatedCluster:
    """Greedy list scheduler over ``num_nodes * cores_per_node`` slots."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config if config is not None else ClusterConfig()

    def schedule(self, task_costs: Sequence[float]) -> TaskStats:
        """Assign independent tasks to slots in submission order.

        Each task is placed on the slot that frees up earliest — the
        behaviour of a slot scheduler pulling from a task queue.  (This
        is the classic 2-approximation of optimal makespan; real
        clusters do no better without task-length oracles.)

        Args:
            task_costs: simulated seconds of one core per task, in
                submission order.

        Returns:
            The stage's :class:`TaskStats`; zero tasks yield a zero
            makespan.
        """
        for i, cost in enumerate(task_costs):
            if cost < 0:
                raise ValueError(f"task {i} has negative cost {cost}")
        slots = self.config.total_slots
        if not task_costs:
            return TaskStats(
                num_tasks=0,
                serial_cost=0.0,
                makespan=0.0,
                slot_utilization=1.0,
                per_slot_busy=tuple(0.0 for _ in range(slots)),
            )
        # Min-heap of (finish_time, slot_index).
        heap: List[Tuple[float, int]] = [(0.0, s) for s in range(slots)]
        heapq.heapify(heap)
        busy = [0.0] * slots
        overhead = self.config.task_overhead
        for cost in task_costs:
            finish, slot = heapq.heappop(heap)
            duration = cost + overhead
            busy[slot] += duration
            heapq.heappush(heap, (finish + duration, slot))
        makespan = max(finish for finish, _ in heap)
        serial = sum(task_costs) + overhead * len(task_costs)
        utilization = serial / (makespan * slots) if makespan > 0 else 1.0
        return TaskStats(
            num_tasks=len(task_costs),
            serial_cost=serial,
            makespan=makespan,
            slot_utilization=utilization,
            per_slot_busy=tuple(busy),
        )

    def simulate(
        self,
        task_costs: Sequence[float],
        stage_id: str = "stage",
        placements: Optional[Sequence[int]] = None,
    ) -> TaskStats:
        """Schedule a stage under the configured skew / speculation /
        locality policy (event-driven), falling back to plain list
        scheduling when none of those knobs are set.

        ``placements`` gives each task's input-block node for delay
        scheduling; pass None for shuffled (reduce) stages.
        """
        cfg = self.config
        advanced = (
            cfg.skew_sigma > 0
            or cfg.speculate
            or (placements is not None and cfg.remote_read_penalty > 0)
        )
        if not advanced:
            return self.schedule(task_costs)
        policy = StagePolicy(
            slots=cfg.total_slots,
            cores_per_node=cfg.cores_per_node,
            task_overhead=cfg.task_overhead,
            skew=SkewModel(sigma=cfg.skew_sigma, seed=cfg.skew_seed),
            speculate=cfg.speculate,
            locality_wait=cfg.locality_wait,
            remote_read_penalty=cfg.remote_read_penalty,
        )
        sim = simulate_stage(task_costs, policy, stage_id, placements)
        serial = sum(task_costs) + cfg.task_overhead * len(task_costs)
        utilization = (
            serial / (sim.makespan * cfg.total_slots) if sim.makespan > 0 else 1.0
        )
        return TaskStats(
            num_tasks=len(task_costs),
            serial_cost=serial,
            makespan=sim.makespan,
            slot_utilization=utilization,
            per_slot_busy=(),
            speculative_copies=sim.speculative_copies,
            wasted_work=sim.wasted_work,
            local_tasks=sim.local_tasks,
            remote_tasks=sim.remote_tasks,
        )

    def speedup(self, task_costs: Sequence[float]) -> float:
        """Serial-cost / makespan for one stage (ideal = total_slots)."""
        stats = self.schedule(task_costs)
        if stats.makespan == 0.0:
            return float(self.config.total_slots)
        return stats.serial_cost / stats.makespan
