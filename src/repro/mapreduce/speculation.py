"""Stragglers, speculative execution and locality-aware placement.

The plain :class:`~repro.mapreduce.cluster.SimulatedCluster` assumes a
task's duration equals its cost.  Real clusters do not behave that way
— "the main challenges are skew of spatial data (load imbalance)"
(paper Sec. II) — so this module adds the two standard mitigations as
an event-driven stage simulation:

* **Skew** (:class:`SkewModel`): each task attempt's duration is its
  cost times a deterministic lognormal factor, reproducing slow nodes,
  contended disks and data skew.
* **Speculative execution**: once the dispatch queue drains, idle
  slots launch backup copies of the longest-remaining running tasks
  (Hadoop/Spark's speculation, in the spirit of LATE); a task finishes
  when its first copy does, and the loser's work is *wasted* — the
  simulation reports how much.
* **Delay scheduling for locality**: map tasks prefer a slot on the
  node holding their input block; a task waits up to ``locality_wait``
  simulated seconds for a local slot before settling for a remote one
  and paying ``remote_read_penalty`` extra seconds (the Zaharia et al.
  delay-scheduling policy, simplified to one wait level).

Everything is deterministic given the seeds, like the rest of the
substrate.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SkewModel:
    """Deterministic multiplicative duration noise.

    Attributes:
        sigma: lognormal shape; 0 disables skew (factor 1 for every
            attempt).  0.3-0.6 covers typical cluster variability;
            the heavy upper tail is what speculation exists for.
        seed: determinism root.
    """

    sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def factor(self, stage_id: str, task_id: int, attempt: int) -> float:
        """The duration multiplier for one attempt (pure function)."""
        if self.sigma == 0.0:
            return 1.0
        digest = hashlib.blake2b(
            f"{self.seed}:{stage_id}:{task_id}:{attempt}".encode(),
            digest_size=8,
        ).digest()
        (raw,) = struct.unpack("<Q", digest)
        # Box-Muller on two 32-bit halves of the digest.
        u1 = ((raw & 0xFFFFFFFF) + 1) / 2**32
        u2 = ((raw >> 32) + 1) / 2**32
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(self.sigma * z - self.sigma**2 / 2.0)


@dataclass(frozen=True)
class StagePolicy:
    """Scheduling policy for one simulated stage.

    Attributes:
        slots: worker slots in the cluster.
        cores_per_node: slots per node (slot ``s`` lives on node
            ``s // cores_per_node``); only relevant with locality.
        task_overhead: fixed dispatch cost per attempt.
        skew: the duration-noise model.
        speculate: launch backup copies on idle slots once the queue
            drains.
        speculation_margin: a copy is only launched if its expected
            duration beats the original's *remaining* time by this
            factor (avoids hopeless copies).
        locality_wait: how long a task waits for a slot on its data's
            node before going remote (0 = no delay scheduling).
        remote_read_penalty: extra seconds a non-local attempt pays.
    """

    slots: int = 56
    cores_per_node: int = 4
    task_overhead: float = 0.01
    skew: SkewModel = SkewModel()
    speculate: bool = False
    speculation_margin: float = 0.8
    locality_wait: float = 0.0
    remote_read_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError(f"slots must be positive, got {self.slots}")
        if self.cores_per_node <= 0:
            raise ValueError(
                f"cores_per_node must be positive, got {self.cores_per_node}"
            )
        if self.task_overhead < 0 or self.locality_wait < 0 or self.remote_read_penalty < 0:
            raise ValueError("overheads and penalties must be non-negative")
        if not 0.0 < self.speculation_margin <= 1.0:
            raise ValueError(
                f"speculation_margin must be in (0, 1], got {self.speculation_margin}"
            )

    def node_of_slot(self, slot: int) -> int:
        return slot // self.cores_per_node


@dataclass
class StageSimResult:
    """Outcome of one simulated stage.

    Attributes:
        makespan: when the last task completed.
        task_finish: effective completion time per task.
        speculative_copies: backup attempts launched.
        wasted_work: simulated seconds burned by losing copies.
        local_tasks / remote_tasks: locality outcome counts (only
            meaningful when placements were provided).
    """

    makespan: float
    task_finish: List[float]
    speculative_copies: int = 0
    wasted_work: float = 0.0
    local_tasks: int = 0
    remote_tasks: int = 0


def simulate_stage(
    task_costs: Sequence[float],
    policy: StagePolicy,
    stage_id: str = "stage",
    placements: Optional[Sequence[int]] = None,
) -> StageSimResult:
    """Event-driven simulation of one stage under ``policy``.

    Args:
        task_costs: base cost per task (seconds of one core).
        policy: scheduling policy.
        stage_id: seeds the skew factors (a retried stage re-rolls).
        placements: optional node index per task (its input block's
            home) enabling delay scheduling.

    Returns:
        The stage's :class:`StageSimResult`.
    """
    for i, cost in enumerate(task_costs):
        if cost < 0:
            raise ValueError(f"task {i} has negative cost {cost}")
    if placements is not None and len(placements) != len(task_costs):
        raise ValueError(
            f"{len(placements)} placements for {len(task_costs)} tasks"
        )
    n = len(task_costs)
    if n == 0:
        return StageSimResult(makespan=0.0, task_finish=[])

    # Slot free-times (min-heap of (time, slot)).
    slot_heap: List[Tuple[float, int]] = [(0.0, s) for s in range(policy.slots)]
    heapq.heapify(slot_heap)
    result = StageSimResult(makespan=0.0, task_finish=[math.inf] * n)

    def attempt_duration(task: int, attempt: int, local: bool) -> float:
        duration = (
            task_costs[task] * policy.skew.factor(stage_id, task, attempt)
            + policy.task_overhead
        )
        if not local:
            duration += policy.remote_read_penalty
        return duration

    # ---- dispatch phase: place every task once --------------------------
    running: List[Tuple[float, int]] = []  # (finish_time, task)
    for task in range(n):
        free_time, slot = heapq.heappop(slot_heap)
        local = True
        if placements is not None and policy.remote_read_penalty > 0:
            home = placements[task]
            if policy.node_of_slot(slot) != home:
                # Delay scheduling: is a local slot free soon enough?
                local_slot = _earliest_local(slot_heap, policy, home)
                if (
                    local_slot is not None
                    and local_slot[0] <= free_time + policy.locality_wait
                ):
                    heapq.heappush(slot_heap, (free_time, slot))
                    slot_heap.remove(local_slot)
                    heapq.heapify(slot_heap)
                    free_time, slot = local_slot
                else:
                    local = False
        if placements is not None:
            if local:
                result.local_tasks += 1
            else:
                result.remote_tasks += 1
        duration = attempt_duration(task, 1, local)
        finish = free_time + duration
        heapq.heappush(slot_heap, (finish, slot))
        running.append((finish, task))
        result.task_finish[task] = finish

    if not policy.speculate:
        result.makespan = max(result.task_finish)
        return result

    # ---- speculation phase ------------------------------------------------
    # Once the queue is empty, idle slots back up the worst stragglers.
    running.sort(reverse=True)  # worst finish first
    backed_up: set = set()
    for finish, task in running:
        free_time, slot = heapq.heappop(slot_heap)
        heapq.heappush(slot_heap, (free_time, slot))
        if task in backed_up:
            continue
        remaining = result.task_finish[task] - free_time
        if remaining <= 0:
            continue  # task done before any slot frees
        copy_duration = attempt_duration(task, 2, True)
        if copy_duration >= remaining * policy.speculation_margin:
            continue  # the copy would not plausibly win
        heapq.heappop(slot_heap)
        copy_finish = free_time + copy_duration
        original_finish = result.task_finish[task]
        effective = min(original_finish, copy_finish)
        result.task_finish[task] = effective
        result.speculative_copies += 1
        backed_up.add(task)
        # The losing attempt's time past the winner is wasted work.
        result.wasted_work += max(original_finish, copy_finish) - effective
        heapq.heappush(slot_heap, (copy_finish, slot))

    result.makespan = max(result.task_finish)
    return result


def _earliest_local(
    slot_heap: Sequence[Tuple[float, int]],
    policy: StagePolicy,
    node: int,
) -> Optional[Tuple[float, int]]:
    """The earliest-free slot on ``node``, or None."""
    best: Optional[Tuple[float, int]] = None
    for free_time, slot in slot_heap:
        if policy.node_of_slot(slot) != node:
            continue
        if best is None or free_time < best[0]:
            best = (free_time, slot)
    return best
