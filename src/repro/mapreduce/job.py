"""Job specification and metrics for the MapReduce engine.

A job is the paper's four-stage unit (Sec. V-A): the input dataset is
already split (its partitions are the map tasks), the ``mapper`` turns
records into ``(key, value)`` pairs, the shuffle routes pairs to
reducers, and the ``reducer`` aggregates each key group.  Two optional
pieces match real deployments:

* a ``combiner`` — map-side pre-aggregation, applied per map task;
* simulated **cost functions** — per-record map cost and per-group
  reduce cost, accumulated into per-task costs and scheduled onto the
  simulated cluster to obtain the stage makespans the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, List, Optional, Tuple

from repro.mapreduce.cluster import TaskStats

Mapper = Callable[[Any], Iterable[Tuple[Hashable, Any]]]
Reducer = Callable[[Hashable, List[Any]], Iterable[Any]]
Combiner = Callable[[Hashable, List[Any]], Iterable[Tuple[Hashable, Any]]]
MapCost = Callable[[Any], float]
ReduceCost = Callable[[Hashable, List[Any]], float]


@dataclass(frozen=True)
class MapReduceJob:
    """One MapReduce job.

    Attributes:
        name: job id used in logs, metrics and failure injection.
        mapper: record -> iterable of (key, value) pairs.
        reducer: (key, values) -> iterable of output records.  ``None``
            makes the job *map-only*: mapper outputs are written out
            partition-for-partition with no shuffle (Spark's narrow
            stage; the VID feature-extraction job uses this).
        combiner: optional map-side aggregation, (key, values) ->
            iterable of (key, value); applied once per map task.
        num_reducers: reduce-task count for shuffled jobs (ignored when
            ``partitioner`` is given — its partition count wins).
        map_cost: simulated seconds of one core to map one record.
        reduce_cost: simulated seconds to reduce one key group.
        partitioner: custom key routing (e.g. a range partitioner for
            sorted output); ``None`` uses hash partitioning.
        key_order: sort key applied to each reduce task's keys before
            reducing ("shuffled, *sorted* ... and grouped"); ``None``
            sorts by ``repr``, which is deterministic for any key type.
    """

    name: str
    mapper: Mapper
    reducer: Optional[Reducer] = None
    combiner: Optional[Combiner] = None
    num_reducers: int = 8
    map_cost: Optional[MapCost] = None
    reduce_cost: Optional[ReduceCost] = None
    partitioner: Optional[Any] = None
    key_order: Optional[Callable[[Hashable], Any]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.num_reducers <= 0:
            raise ValueError(
                f"num_reducers must be positive, got {self.num_reducers}"
            )


@dataclass
class JobMetrics:
    """Everything measured while running one job.

    ``simulated_time`` is the number the paper's Figs. 8/9 plot: the
    sum of the two stages' makespans on the simulated cluster.
    ``wall_time`` is the real elapsed seconds of this Python process,
    reported by the engine ablation bench.
    """

    job_name: str
    map_tasks: int = 0
    reduce_tasks: int = 0
    map_attempts: int = 0
    reduce_attempts: int = 0
    records_in: int = 0
    pairs_shuffled: int = 0
    records_out: int = 0
    map_stats: Optional[TaskStats] = None
    reduce_stats: Optional[TaskStats] = None
    wall_time: float = 0.0

    @property
    def simulated_time(self) -> float:
        """Stage makespans on the simulated cluster, summed."""
        total = 0.0
        if self.map_stats is not None:
            total += self.map_stats.makespan
        if self.reduce_stats is not None:
            total += self.reduce_stats.makespan
        return total

    @property
    def retries(self) -> int:
        """Attempts beyond the first per task, both stages."""
        return (self.map_attempts - self.map_tasks) + (
            self.reduce_attempts - self.reduce_tasks
        )
