"""MapReduce execution substrate (paper Sec. V-A).

The paper parallelizes EV-Matching with MapReduce and implements it on
Apache Spark.  Neither is importable here, so this package provides the
substrate from scratch:

* :mod:`repro.mapreduce.cluster` — a simulated cluster: nodes with
  worker slots, a list scheduler that assigns tasks and computes the
  stage *makespan* from per-task simulated costs (this is what turns
  the matcher's serial cost accounting into the parallel times of
  Figs. 8/9).
* :mod:`repro.mapreduce.job` / :mod:`engine` — the programming model:
  jobs with map / combine / partition / reduce functions, executed
  split -> map -> shuffle -> reduce with task retry under injected
  failures, serially or on a thread pool.
* :mod:`repro.mapreduce.storage` — an in-memory stand-in for the
  "underlying distributed file system": named, partitioned datasets
  with block placement.
* :mod:`repro.mapreduce.rdd` / :mod:`context` — a small Spark-like RDD
  layer (lineage of narrow transformations compiled onto the engine,
  wide ones via its shuffle) mirroring how the authors moved from
  MapReduce pseudocode to a Spark implementation.
"""

from repro.mapreduce.accumulators import Accumulator, AccumulatorRegistry
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster, TaskStats
from repro.mapreduce.failures import FailureInjector, FailurePolicy, InjectedTaskFailure
from repro.mapreduce.job import JobMetrics, MapReduceJob
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.shuffle import HashPartitioner, Partitioner, RangePartitioner
from repro.mapreduce.storage import DatasetHandle, InMemoryDFS
from repro.mapreduce.rdd import RDD
from repro.mapreduce.speculation import SkewModel, StagePolicy, simulate_stage
from repro.mapreduce.context import EVSparkContext

__all__ = [
    "Accumulator",
    "AccumulatorRegistry",
    "ClusterConfig",
    "DatasetHandle",
    "EVSparkContext",
    "FailureInjector",
    "FailurePolicy",
    "HashPartitioner",
    "InMemoryDFS",
    "InjectedTaskFailure",
    "JobMetrics",
    "MapReduceEngine",
    "MapReduceJob",
    "Partitioner",
    "RDD",
    "RangePartitioner",
    "SimulatedCluster",
    "SkewModel",
    "StagePolicy",
    "TaskStats",
    "simulate_stage",
]
