"""In-memory stand-in for the distributed file system.

"During the entire process, all data are stored in an underlying
distributed file system" (paper Sec. V-A).  The engine reads its input
from and writes its output to this store: named datasets, each a list
of partitions (blocks), with round-robin block placement over the
cluster's nodes so locality-aware scheduling and skew inspection are
possible.

Everything is in-process — the point is to reproduce the *interface
and bookkeeping* the algorithms depend on (partitioned named datasets,
block placement, immutability), not remote I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DatasetHandle:
    """A reference to a stored dataset.

    Attributes:
        name: the dataset's key in the store.
        num_partitions: how many blocks it has.
        num_records: total records across blocks.
    """

    name: str
    num_partitions: int
    num_records: int


class InMemoryDFS:
    """Named, partitioned, immutable datasets with block placement."""

    def __init__(self, num_nodes: int = 14) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._datasets: Dict[str, Tuple[Tuple[Any, ...], ...]] = {}
        self._placement: Dict[str, Tuple[int, ...]] = {}

    def write(
        self, name: str, partitions: Sequence[Sequence[Any]]
    ) -> DatasetHandle:
        """Store a dataset; blocks are placed round-robin over nodes.

        Raises:
            ValueError: if the name is already taken (datasets are
                immutable; write to a new name, as MapReduce jobs do).
        """
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already exists")
        frozen = tuple(tuple(p) for p in partitions)
        self._datasets[name] = frozen
        self._placement[name] = tuple(
            i % self.num_nodes for i in range(len(frozen))
        )
        return DatasetHandle(
            name=name,
            num_partitions=len(frozen),
            num_records=sum(len(p) for p in frozen),
        )

    def write_records(
        self, name: str, records: Sequence[Any], num_partitions: int
    ) -> DatasetHandle:
        """Store flat records split into ``num_partitions`` even blocks."""
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        partitions: List[List[Any]] = [[] for _ in range(num_partitions)]
        for i, record in enumerate(records):
            partitions[i % num_partitions].append(record)
        return self.write(name, partitions)

    def exists(self, name: str) -> bool:
        return name in self._datasets

    def delete(self, name: str) -> None:
        """Remove a dataset (e.g. an iteration's intermediate output)."""
        if name not in self._datasets:
            raise KeyError(f"no dataset {name!r}")
        del self._datasets[name]
        del self._placement[name]

    def handle(self, name: str) -> DatasetHandle:
        partitions = self._partitions(name)
        return DatasetHandle(
            name=name,
            num_partitions=len(partitions),
            num_records=sum(len(p) for p in partitions),
        )

    def read_partition(self, name: str, index: int) -> Tuple[Any, ...]:
        partitions = self._partitions(name)
        if not 0 <= index < len(partitions):
            raise IndexError(
                f"dataset {name!r} has {len(partitions)} partitions, "
                f"asked for {index}"
            )
        return partitions[index]

    def read_all(self, name: str) -> List[Any]:
        """All records, in partition order (a collect)."""
        return [record for p in self._partitions(name) for record in p]

    def node_of(self, name: str, partition: int) -> int:
        """Which node hosts a block — for locality-aware scheduling."""
        placement = self._placement.get(name)
        if placement is None:
            raise KeyError(f"no dataset {name!r}")
        return placement[partition]

    def num_partitions(self, name: str) -> int:
        return len(self._partitions(name))

    def datasets(self) -> Sequence[str]:
        return tuple(sorted(self._datasets.keys()))

    def _partitions(self, name: str) -> Tuple[Tuple[Any, ...], ...]:
        try:
            return self._datasets[name]
        except KeyError:
            raise KeyError(f"no dataset {name!r}") from None
