"""Spark-style accumulators: driver-visible counters for tasks.

Mappers and reducers are plain callables, so side statistics (records
dropped, parse errors, cache hits) have nowhere to go through return
values.  Spark's answer is the accumulator: a driver-owned cell that
task closures capture and `add` to; this module reproduces it,
including the famous caveat.

    sc = EVSparkContext()
    dropped = sc.accumulator("dropped")
    rdd.filter(lambda x: keep(x) or not dropped.add(1)).collect()
    print(dropped.value)

**The retry caveat, faithfully.**  The engine re-runs failed task
attempts, and an attempt may die *after* it already added to an
accumulator — so under failures an accumulator can over-count, exactly
as Spark documents for accumulators used inside transformations.
Accumulators are statistics, not results; anything that must be exact
belongs in the job's output.  (A test pins this behaviour down so
nobody "fixes" it into false precision.)
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, TypeVar

T = TypeVar("T")


class Accumulator:
    """A thread-safe, add-only cell shared between driver and tasks.

    Args:
        name: label used in ``__repr__`` and context listings.
        initial: starting value.
        combine: how to fold an added amount into the current value
            (default: ``+``).  Must be associative and commutative —
            task execution order is unspecified.
    """

    def __init__(
        self,
        name: str = "accumulator",
        initial: T = 0,  # type: ignore[assignment]
        combine: Optional[Callable[[T, T], T]] = None,
    ) -> None:
        self.name = name
        self._value = initial
        self._combine = combine if combine is not None else (lambda a, b: a + b)
        self._lock = threading.Lock()

    def add(self, amount: T) -> None:
        """Fold ``amount`` into the accumulator (safe from any thread)."""
        with self._lock:
            self._value = self._combine(self._value, amount)

    @property
    def value(self) -> T:
        """The current folded value (read on the driver)."""
        with self._lock:
            return self._value

    def reset(self, value: T = 0) -> None:  # type: ignore[assignment]
        """Driver-side reset (e.g. between experiment repetitions)."""
        with self._lock:
            self._value = value

    def __repr__(self) -> str:
        return f"Accumulator({self.name}={self.value!r})"


class AccumulatorRegistry:
    """Named accumulators owned by one context."""

    def __init__(self) -> None:
        self._accumulators: Dict[str, Accumulator] = {}

    def create(
        self,
        name: str,
        initial: T = 0,  # type: ignore[assignment]
        combine: Optional[Callable[[T, T], T]] = None,
    ) -> Accumulator:
        """Create (or fetch) the accumulator called ``name``.

        Re-creating an existing name returns the existing accumulator —
        convenient for notebook-style re-execution.
        """
        existing = self._accumulators.get(name)
        if existing is not None:
            return existing
        accumulator = Accumulator(name=name, initial=initial, combine=combine)
        self._accumulators[name] = accumulator
        return accumulator

    def snapshot(self) -> Dict[str, object]:
        """Current values of every accumulator, by name."""
        return {name: acc.value for name, acc in sorted(self._accumulators.items())}
