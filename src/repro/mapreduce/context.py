"""EVSparkContext: the RDD entry point and lineage compiler.

Owns the engine (and through it the DFS and the simulated cluster),
hands out RDDs, and materializes lineage graphs: each maximal chain of
narrow nodes becomes one map-only job; each shuffle node becomes one
shuffled job; unions concatenate partitions in storage.  Every job's
:class:`~repro.mapreduce.job.JobMetrics` is appended to ``job_log`` so
callers can audit what actually ran (the engine ablation bench does).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.mapreduce.accumulators import Accumulator, AccumulatorRegistry
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobMetrics, MapReduceJob
from repro.mapreduce.rdd import RDD, _Narrow, _Node, _Shuffle, _Source, _Union
from repro.obs import get_registry


class EVSparkContext:
    """Creates RDDs and compiles their lineage onto the engine."""

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        default_partitions: int = 8,
    ) -> None:
        if default_partitions <= 0:
            raise ValueError(
                f"default_partitions must be positive, got {default_partitions}"
            )
        self.engine = engine if engine is not None else MapReduceEngine()
        self.default_partitions = default_partitions
        self.job_log: List[JobMetrics] = []
        self.accumulators = AccumulatorRegistry()
        self._name_counter = itertools.count()

    def accumulator(self, name: str, initial=0, combine=None) -> Accumulator:
        """A named driver-side counter task closures can ``add`` to.

        See :mod:`repro.mapreduce.accumulators` for semantics and the
        retry over-counting caveat.
        """
        return self.accumulators.create(name, initial=initial, combine=combine)

    # -- RDD creation -----------------------------------------------------
    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute a local collection into an RDD."""
        records = list(data)
        num = num_partitions or self.default_partitions
        name = self._fresh_name("parallelize")
        self.engine.dfs.write_records(name, records, num)
        return RDD(self, _Source(name))

    def from_dataset(self, dataset_name: str) -> RDD:
        """Wrap an existing DFS dataset (keeps its partitioning)."""
        if not self.engine.dfs.exists(dataset_name):
            raise KeyError(f"no dataset {dataset_name!r}")
        return RDD(self, _Source(dataset_name))

    # -- lineage compilation ------------------------------------------------
    def materialize(self, node: _Node) -> str:
        """Evaluate a lineage node to a DFS dataset name (with caching)."""
        if node.cached_name is not None:
            return node.cached_name
        name = self._evaluate(node)
        if node.cached:
            node.cached_name = name
        return name

    def _evaluate(self, node: _Node) -> str:
        if isinstance(node, _Source):
            return node.dataset_name
        if isinstance(node, _Union):
            parts: List[Sequence[Any]] = []
            for parent in node.parents:
                parent_name = self.materialize(parent)
                dfs = self.engine.dfs
                for i in range(dfs.num_partitions(parent_name)):
                    parts.append(dfs.read_partition(parent_name, i))
            name = self._fresh_name("union")
            self.engine.dfs.write(name, parts)
            return name
        if isinstance(node, _Narrow):
            chain, base = self._narrow_chain(node)
            base_name = self.materialize(base)
            fn = self._compose(chain)
            job = MapReduceJob(name=self._fresh_name("narrow"), mapper=fn)
            handle, metrics = self.engine.run(
                job, base_name, self._fresh_name("narrow-out")
            )
            self.job_log.append(metrics)
            self._publish_accumulators()
            return handle.name
        if isinstance(node, _Shuffle):
            base_name = self.materialize(node.parent)
            job = MapReduceJob(
                name=self._fresh_name(node.label),
                mapper=node.pair_fn,
                reducer=node.reduce_fn,
                combiner=node.combiner,
                num_reducers=node.num_partitions or self.default_partitions,
                partitioner=node.partitioner,
                key_order=node.key_order,
            )
            handle, metrics = self.engine.run(
                job, base_name, self._fresh_name(f"{node.label}-out")
            )
            self.job_log.append(metrics)
            self._publish_accumulators()
            return handle.name
        raise TypeError(f"unknown lineage node {type(node).__name__}")

    def _publish_accumulators(self) -> None:
        """Mirror numeric accumulator values into the metrics registry.

        Runs after every job so ``mr_accumulator`` gauges track the
        driver-side counters as lineage materializes; non-numeric
        accumulators (custom combine types) are skipped.
        """
        gauge = get_registry().gauge(
            "mr_accumulator", "Driver-side accumulator values, by name"
        )
        for name, value in self.accumulators.snapshot().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            gauge.set(float(value), name=name)

    @staticmethod
    def _narrow_chain(node: _Narrow):
        """Walk up consecutive uncached narrow nodes; return (chain, base).

        ``chain`` is in application order (earliest first).  A cached
        narrow node acts as a chain boundary so its materialization is
        reused.
        """
        chain: List[_Narrow] = []
        current: _Node = node
        while isinstance(current, _Narrow):
            chain.append(current)
            if current.cached and current is not node:
                break
            parent = current.parent
            if isinstance(parent, _Narrow) and not parent.cached:
                current = parent
            else:
                return list(reversed(chain)), parent
        # Loop exited via the cached-boundary break.
        boundary = chain.pop()
        return list(reversed(chain)), boundary

    @staticmethod
    def _compose(chain: Sequence[_Narrow]) -> Callable[[Any], Iterable[Any]]:
        """Fuse a narrow chain into one record -> records function."""

        def fused(record: Any) -> Iterable[Any]:
            outputs = [record]
            for node in chain:
                next_outputs: List[Any] = []
                for item in outputs:
                    next_outputs.extend(node.fn(item))
                outputs = next_outputs
            return outputs

        return fused

    def _fresh_name(self, prefix: str) -> str:
        return f"{prefix}-{next(self._name_counter)}"
