"""Shuffle machinery: partitioners and the group-by-key exchange.

"Then all the (key, value) pairs from all mappers are shuffled, sorted
to put in order and grouped" (paper Sec. V-A).  The EV-Matching
parallelization leans on exactly this: the EID set-splitting map step
emits ``(eid, set_id)`` pairs and relies on the shuffle to bring every
set id containing a given EID to one reducer (Sec. V-B).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple


class Partitioner(abc.ABC):
    """Maps a key to one of ``num_partitions`` reducers."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    @abc.abstractmethod
    def partition(self, key: Hashable) -> int:
        """The reducer index for ``key``, in ``[0, num_partitions)``."""


class HashPartitioner(Partitioner):
    """Stable hash partitioning (the MapReduce default).

    Uses a simple polynomial hash over ``repr(key)`` rather than
    built-in ``hash`` so partition assignment is stable across
    processes and Python's hash randomization — reproducibility again.
    """

    def partition(self, key: Hashable) -> int:
        text = repr(key)
        value = 2166136261
        for ch in text.encode("utf-8", errors="backslashreplace"):
            value = (value ^ ch) * 16777619 % 2**32
        return value % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition by sorted key ranges (for ordered outputs).

    Built from an explicit boundary list: key goes to the first range
    whose upper boundary is >= key.  Used by ``RDD.sortBy``.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        super().__init__(len(boundaries) + 1)
        self.boundaries = tuple(boundaries)

    def partition(self, key: Hashable) -> int:
        for i, bound in enumerate(self.boundaries):
            if key <= bound:  # type: ignore[operator]
                return i
        return len(self.boundaries)


def bucket_pairs(
    pairs: Iterable[Tuple[Hashable, Any]],
    partitioner: Partitioner,
) -> List[List[Tuple[Hashable, Any]]]:
    """One map task's shuffle write: split emitted pairs into buckets."""
    buckets: List[List[Tuple[Hashable, Any]]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    for key, value in pairs:
        buckets[partitioner.partition(key)].append((key, value))
    return buckets


def merge_buckets(
    bucket_lists: Sequence[Sequence[Sequence[Tuple[Hashable, Any]]]],
    reducer_index: int,
) -> Dict[Hashable, List[Any]]:
    """One reduce task's shuffle read: gather and group its bucket.

    Collects bucket ``reducer_index`` from every map task's output and
    groups values by key.  Keys keep the deterministic order of first
    appearance; the engine sorts them before reducing, completing the
    "shuffled, sorted ... and grouped" contract.
    """
    grouped: Dict[Hashable, List[Any]] = {}
    for buckets in bucket_lists:
        for key, value in buckets[reducer_index]:
            grouped.setdefault(key, []).append(value)
    return grouped
