"""Task-failure injection and retry policy.

MapReduce's defining operational property is that "task failure
recovery [is] managed by a master machine" (paper Sec. V-A).  The
engine reproduces it: a :class:`FailureInjector` deterministically
decides whether a given task *attempt* fails, and the engine re-runs
failed attempts up to ``max_attempts``.  Determinism matters — the
whole benchmark suite must be bit-reproducible — so the injector hashes
``(seed, job, task, attempt)`` instead of consuming a shared RNG
stream.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass


class InjectedTaskFailure(RuntimeError):
    """Raised inside a task attempt the injector chose to kill."""

    def __init__(self, job_id: str, task_id: int, attempt: int) -> None:
        super().__init__(
            f"injected failure: job={job_id} task={task_id} attempt={attempt}"
        )
        self.job_id = job_id
        self.task_id = task_id
        self.attempt = attempt


@dataclass(frozen=True)
class FailurePolicy:
    """How unreliable the simulated cluster is.

    Attributes:
        failure_rate: probability that any single task attempt dies
            (machine fault, preemption, bad disk).
        max_attempts: attempts per task before the job is failed
            (Hadoop's default is 4).
        seed: determinism root.
    """

    failure_rate: float = 0.0
    max_attempts: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.max_attempts <= 0:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )


class FailureInjector:
    """Deterministic per-attempt failure decisions."""

    def __init__(self, policy: FailurePolicy) -> None:
        self.policy = policy

    def should_fail(self, job_id: str, task_id: int, attempt: int) -> bool:
        """Whether this specific attempt is killed.

        The decision is a pure function of (policy seed, job, task,
        attempt): re-running a job replays exactly the same faults.
        """
        if self.policy.failure_rate == 0.0:
            return False
        digest = hashlib.blake2b(
            f"{self.policy.seed}:{job_id}:{task_id}:{attempt}".encode(),
            digest_size=8,
        ).digest()
        (value,) = struct.unpack("<Q", digest)
        return (value / 2**64) < self.policy.failure_rate

    def check(self, job_id: str, task_id: int, attempt: int) -> None:
        """Raise :class:`InjectedTaskFailure` if this attempt must die."""
        if self.should_fail(job_id, task_id, attempt):
            raise InjectedTaskFailure(job_id, task_id, attempt)
