"""A small Spark-like RDD layer on top of the MapReduce engine.

The paper implements its MapReduce design "on Apache Spark [2]"
(Sec. I, VI-A).  This module provides the corresponding programming
model: an :class:`RDD` is an immutable, lazily-evaluated, partitioned
collection described by a *lineage* of transformations.  Narrow
transformations (``map`` / ``filter`` / ``flatMap`` / ``mapValues`` /
``keyBy``) are fused into a single map-only engine job per chain; wide
transformations (``groupByKey`` / ``reduceByKey`` / ``distinct`` /
``join`` / ``sortBy``) each compile to one shuffled job.  ``cache()``
pins the materialized dataset in the DFS so shared lineage prefixes
run once.

Example::

    sc = EVSparkContext()
    pairs = sc.parallelize(range(100)).map(lambda x: (x % 3, x))
    sums = pairs.reduceByKey(lambda a, b: a + b).collect()
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.mapreduce.shuffle import RangePartitioner


class _Node:
    """A lineage node.  Subclasses define how to materialize."""

    def __init__(self) -> None:
        self.cached = False
        self.cached_name: Optional[str] = None


class _Source(_Node):
    """Data already in the DFS."""

    def __init__(self, dataset_name: str) -> None:
        super().__init__()
        self.dataset_name = dataset_name


class _Narrow(_Node):
    """Per-record transformation: record -> iterable of records."""

    def __init__(self, parent: _Node, fn: Callable[[Any], Iterable[Any]]) -> None:
        super().__init__()
        self.parent = parent
        self.fn = fn


class _Shuffle(_Node):
    """Wide transformation compiled to one shuffled engine job."""

    def __init__(
        self,
        parent: _Node,
        pair_fn: Callable[[Any], Iterable[Tuple[Hashable, Any]]],
        reduce_fn: Callable[[Hashable, List[Any]], Iterable[Any]],
        num_partitions: Optional[int],
        combiner: Optional[Callable[[Hashable, List[Any]], Iterable[Tuple[Hashable, Any]]]] = None,
        partitioner: Optional[Any] = None,
        key_order: Optional[Callable[[Hashable], Any]] = None,
        label: str = "shuffle",
    ) -> None:
        super().__init__()
        self.parent = parent
        self.pair_fn = pair_fn
        self.reduce_fn = reduce_fn
        self.num_partitions = num_partitions
        self.combiner = combiner
        self.partitioner = partitioner
        self.key_order = key_order
        self.label = label


class _Union(_Node):
    """Concatenation of parents' partitions (no job needed)."""

    def __init__(self, parents: Sequence[_Node]) -> None:
        super().__init__()
        self.parents = list(parents)


def _identity_iter(record: Any) -> Iterable[Any]:
    yield record


class RDD:
    """An immutable distributed collection with Spark-style operators.

    Construct via :class:`~repro.mapreduce.context.EVSparkContext`
    (``parallelize`` / ``from_dataset``), not directly.
    """

    def __init__(self, context: "EVSparkContext", node: _Node) -> None:  # noqa: F821
        self._ctx = context
        self._node = node

    # -- narrow transformations ------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        """Apply ``fn`` to every record."""
        return RDD(self._ctx, _Narrow(self._node, lambda r: (fn(r),)))

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        """Keep records where ``predicate`` is true."""
        return RDD(
            self._ctx,
            _Narrow(self._node, lambda r: (r,) if predicate(r) else ()),
        )

    def flatMap(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Apply ``fn`` and flatten the results."""
        return RDD(self._ctx, _Narrow(self._node, fn))

    def keyBy(self, fn: Callable[[Any], Hashable]) -> "RDD":
        """Turn records into ``(fn(record), record)`` pairs."""
        return self.map(lambda r: (fn(r), r))

    def mapValues(self, fn: Callable[[Any], Any]) -> "RDD":
        """Apply ``fn`` to the value of each ``(key, value)`` pair."""
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (partitions are appended)."""
        if other._ctx is not self._ctx:
            raise ValueError("cannot union RDDs from different contexts")
        return RDD(self._ctx, _Union([self._node, other._node]))

    def cache(self) -> "RDD":
        """Pin this RDD's materialization so downstream reuse is free."""
        self._node.cached = True
        return self

    # -- wide transformations ---------------------------------------------
    def groupByKey(self, num_partitions: Optional[int] = None) -> "RDD":
        """``(k, v)`` pairs -> ``(k, [v, ...])`` per distinct key."""
        return RDD(
            self._ctx,
            _Shuffle(
                self._node,
                pair_fn=_identity_iter,
                reduce_fn=lambda k, vs: ((k, list(vs)),),
                num_partitions=num_partitions,
                label="groupByKey",
            ),
        )

    def reduceByKey(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Fold values per key with ``fn`` (map-side combined)."""

        def fold(key: Hashable, values: List[Any]) -> Iterable[Tuple[Hashable, Any]]:
            it = iter(values)
            acc = next(it)
            for value in it:
                acc = fn(acc, value)
            yield (key, acc)

        return RDD(
            self._ctx,
            _Shuffle(
                self._node,
                pair_fn=_identity_iter,
                reduce_fn=lambda k, vs: fold(k, vs),
                num_partitions=num_partitions,
                combiner=fold,
                label="reduceByKey",
            ),
        )

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Remove duplicate records (records must be hashable)."""
        return RDD(
            self._ctx,
            _Shuffle(
                self._node,
                pair_fn=lambda r: ((r, None),),
                reduce_fn=lambda k, _vs: (k,),
                num_partitions=num_partitions,
                combiner=lambda k, _vs: ((k, None),),
                label="distinct",
            ),
        )

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join of two pair RDDs: ``(k, (v_self, v_other))``."""
        tagged_self = self.map(lambda kv: (kv[0], (0, kv[1])))
        tagged_other = other.map(lambda kv: (kv[0], (1, kv[1])))

        def emit(key: Hashable, values: List[Any]) -> Iterable[Any]:
            left = [v for tag, v in values if tag == 0]
            right = [v for tag, v in values if tag == 1]
            for lv in left:
                for rv in right:
                    yield (key, (lv, rv))

        return RDD(
            self._ctx,
            _Shuffle(
                tagged_self.union(tagged_other)._node,
                pair_fn=_identity_iter,
                reduce_fn=emit,
                num_partitions=num_partitions,
                label="join",
            ),
        )

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Group two pair RDDs by key: ``(k, ([v_self...], [v_other...]))``.

        Keys present on either side appear in the output (the other
        side's list is empty) — the primitive joins are built from.
        """
        tagged_self = self.map(lambda kv: (kv[0], (0, kv[1])))
        tagged_other = other.map(lambda kv: (kv[0], (1, kv[1])))

        def emit(key: Hashable, values: List[Any]) -> Iterable[Any]:
            left = [v for tag, v in values if tag == 0]
            right = [v for tag, v in values if tag == 1]
            yield (key, (left, right))

        return RDD(
            self._ctx,
            _Shuffle(
                tagged_self.union(tagged_other)._node,
                pair_fn=_identity_iter,
                reduce_fn=emit,
                num_partitions=num_partitions,
                label="cogroup",
            ),
        )

    def leftOuterJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Left outer join: ``(k, (v_self, v_other_or_None))``."""

        def expand(kv):
            key, (left, right) = kv
            for lv in left:
                if right:
                    for rv in right:
                        yield (key, (lv, rv))
                else:
                    yield (key, (lv, None))

        return self.cogroup(other, num_partitions).flatMap(expand)

    def aggregateByKey(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Per-key aggregation with distinct in-partition / merge steps.

        ``seq_fn`` folds a value into an accumulator (used map-side as
        the combiner); ``comb_fn`` merges two accumulators (reduce
        side).  ``zero`` must be immutable or cheaply re-creatable —
        it is reused per key.
        """

        def combiner(key: Hashable, values: List[Any]) -> Iterable[Tuple[Hashable, Any]]:
            acc = zero
            for value in values:
                acc = seq_fn(acc, value)
            yield (key, ("acc", acc))

        def reducer(key: Hashable, values: List[Any]) -> Iterable[Any]:
            acc = zero
            for value in values:
                if isinstance(value, tuple) and len(value) == 2 and value[0] == "acc":
                    acc = comb_fn(acc, value[1])
                else:
                    acc = seq_fn(acc, value)
            yield (key, acc)

        return RDD(
            self._ctx,
            _Shuffle(
                self._node,
                pair_fn=_identity_iter,
                reduce_fn=reducer,
                num_partitions=num_partitions,
                combiner=combiner,
                label="aggregateByKey",
            ),
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Deterministic Bernoulli sample of the records.

        Each record's keep/drop decision hashes ``(seed, repr(record))``
        so the sample is stable across runs and partitionings.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        import hashlib as _hashlib
        import struct as _struct

        def keep(record: Any) -> bool:
            digest = _hashlib.blake2b(
                f"{seed}:{record!r}".encode("utf-8", errors="backslashreplace"),
                digest_size=8,
            ).digest()
            (value,) = _struct.unpack("<Q", digest)
            return (value / 2**64) < fraction

        return self.filter(keep)

    def zipWithIndex(self) -> "RDD":
        """Pair each record with its global position: ``(record, i)``.

        Materializes the parent (index assignment needs total order),
        so use near the end of a pipeline.
        """
        records = self.collect()
        return self._ctx.parallelize(
            [(record, i) for i, record in enumerate(records)]
        )

    def sortBy(
        self,
        key_fn: Callable[[Any], Any],
        num_partitions: Optional[int] = None,
        sample_size: int = 256,
    ) -> "RDD":
        """Globally sort records by ``key_fn`` via range partitioning.

        Samples keys to pick range boundaries (as Spark's
        ``RangePartitioner`` does), shuffles each record to its range,
        and sorts within each reduce task; concatenated partitions are
        globally ordered.
        """
        num = num_partitions or self._ctx.default_partitions
        sample = self.collect()  # boundary sampling needs a pass anyway
        keys = sorted(key_fn(r) for r in sample[:sample_size])
        if keys and num > 1:
            step = max(1, len(keys) // num)
            boundaries = keys[step - 1 :: step][: num - 1]
        else:
            boundaries = []
        partitioner = RangePartitioner(boundaries) if boundaries else None

        def emit_sorted(key: Hashable, values: List[Any]) -> Iterable[Any]:
            for value in sorted(values, key=key_fn):
                yield value

        return RDD(
            self._ctx,
            _Shuffle(
                self._node,
                pair_fn=lambda r: ((key_fn(r), r),),
                reduce_fn=lambda k, vs: iter(vs),
                num_partitions=num,
                partitioner=partitioner,
                key_order=lambda k: k,
                label="sortBy",
            ),
        )

    # -- actions ------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Materialize and return all records (partition order)."""
        name = self._ctx.materialize(self._node)
        return self._ctx.engine.dfs.read_all(name)

    def count(self) -> int:
        """Number of records."""
        name = self._ctx.materialize(self._node)
        return self._ctx.engine.dfs.handle(name).num_records

    def take(self, n: int) -> List[Any]:
        """The first ``n`` records in partition order."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return self.collect()[:n]

    def first(self) -> Any:
        """The first record; raises on an empty RDD."""
        records = self.take(1)
        if not records:
            raise ValueError("RDD is empty")
        return records[0]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all records with ``fn``; raises on an empty RDD."""
        records = self.collect()
        if not records:
            raise ValueError("cannot reduce an empty RDD")
        it = iter(records)
        acc = next(it)
        for record in it:
            acc = fn(acc, record)
        return acc

    def countByKey(self) -> Dict[Hashable, int]:
        """Counts per key of a pair RDD."""
        counts: Dict[Hashable, int] = {}
        for key, _value in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def keys(self) -> "RDD":
        """The keys of a pair RDD."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        """The values of a pair RDD."""
        return self.map(lambda kv: kv[1])

    def sum(self) -> Any:
        """Sum of the records (0 for an empty RDD)."""
        records = self.collect()
        return sum(records) if records else 0

    def min(self) -> Any:
        """Smallest record; raises on an empty RDD."""
        records = self.collect()
        if not records:
            raise ValueError("RDD is empty")
        return min(records)

    def max(self) -> Any:
        """Largest record; raises on an empty RDD."""
        records = self.collect()
        if not records:
            raise ValueError("RDD is empty")
        return max(records)

    def num_partitions(self) -> int:
        """Partition count of the materialized dataset."""
        name = self._ctx.materialize(self._node)
        return self._ctx.engine.dfs.num_partitions(name)
