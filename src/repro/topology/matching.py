"""Topology-aware V-stage machinery: pruning, priors, configuration.

The V stage's cost is quadratic in a target's evidence-list length, so
dropping spatiotemporally impossible evidence *before* feature
comparison changes the stage's asymptotics, not just its constants.
Both consumers here share one primitive — the pairwise consistency
vote of :func:`consistency_votes` — and differ only in what they do
with it:

* :class:`ReachabilityPruner` **drops** scenarios that cannot lie on
  one real trajectory with the rest of the evidence.  A target's true
  sightings are *mutually* consistent under the fitted reachability
  envelope (see :mod:`repro.topology.graph`), so the pruner greedily
  removes the least-consistent key until the survivors form a mutually
  consistent set — the misattributed sightings (reader crosstalk,
  positional drift) clash with their temporal neighbors and are peeled
  off first, while the true core backs itself up pair by pair.  On
  well-behaved worlds the evidence is mutually consistent from the
  start, the loop never fires, and pruning is the identity — the
  soundness contract the hypothesis suite pins.
* :class:`TransitionPrior` **downweights** instead of dropping: each
  scenario's Eq. 1 score vector is multiplied by
  ``prior_weight ** inconsistent_fraction``.  The weight is uniform
  *within* a scenario, so the per-scenario argmax — and with it the
  chosen detection and the accuracy metric's majority vote — is
  provably unchanged; only the cross-scenario ``best``/``scores``
  ranking shifts toward consistent evidence.  On drift-free worlds all
  fractions are zero and the prior is exactly the identity, which is
  why it can never flip a correct top-1 match there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.topology.transit import TransitModel


def consistency_matrix(model: TransitModel, keys: Sequence) -> np.ndarray:
    """Boolean ``k x k`` pairwise-consistency matrix over ``keys``.

    A pair is consistent when the earlier sighting can reach the later
    one through observed transitions (same-tick pairs only in the same
    cell).  Vectorized over the model's hop matrix: for ``k`` keys
    this is two ``k x k`` gathers, no Python-level pair loop.
    """
    k = len(keys)
    cells = np.fromiter((key.cell_id for key in keys), dtype=np.int64, count=k)
    ticks = np.fromiter((key.tick for key in keys), dtype=np.int64, count=k)
    hops = model.graph.hops[cells[:, None], cells[None, :]]
    gaps = ticks[None, :] - ticks[:, None]  # time from row key to column key
    forward = (hops >= 0) & (gaps >= hops)  # row sighted first (or same tick)
    return np.where(gaps >= 0, forward, forward.T)


def consistency_votes(model: TransitModel, keys: Sequence) -> np.ndarray:
    """Per-key count of *other* keys it is pairwise consistent with."""
    return consistency_matrix(model, keys).sum(axis=1) - 1  # drop self-pair


class ReachabilityPruner:
    """Greedily reduces evidence to a mutually consistent core.

    True sightings all lie on one trajectory, so every true pair is
    consistent; a misattributed sighting clashes with its temporal
    neighbors (it would need more hops than the tick gap allows).
    One-shot majority votes miss this — over a long evidence span a
    far-away misread is still "consistent" with most temporally
    distant keys — so the pruner iterates: drop the key with the
    fewest consistent partners, recount among the survivors, stop when
    the remainder is pairwise consistent.  The true core can never be
    whittled down by this loop (its members always agree with each
    other), and if fewer than a quarter of the keys survive the
    pruner keeps the full list instead: with no sizable consistent
    core to trust, dropping evidence is guessing.
    """

    def __init__(self, model: TransitModel) -> None:
        self.model = model

    def prune(self, keys: Sequence) -> Tuple[List, List]:
        """``(kept, dropped)`` partition of ``keys`` (order preserved)."""
        k = len(keys)
        if k <= 1:
            return list(keys), []
        matrix = consistency_matrix(self.model, keys)
        alive = np.ones(k, dtype=bool)
        while int(alive.sum()) > 1:
            indices = np.flatnonzero(alive)
            sub = matrix[np.ix_(indices, indices)]
            votes = sub.sum(axis=1) - 1
            if int(votes.min()) == len(indices) - 1:
                break  # survivors are pairwise consistent
            alive[indices[int(np.argmin(votes))]] = False
        kept = [key for key, live in zip(keys, alive) if live]
        if 4 * len(kept) < k:
            return list(keys), []
        dropped = [key for key, live in zip(keys, alive) if not live]
        return kept, dropped


class TransitionPrior:
    """Per-scenario Eq. 1 multipliers from transit consistency.

    ``weights[i] = prior_weight ** (inconsistent pairs of i / (k-1))``
    — 1.0 for fully consistent evidence, ``prior_weight`` for evidence
    inconsistent with everything else, geometric in between.
    """

    def __init__(self, model: TransitModel, prior_weight: float = 0.25) -> None:
        if not 0.0 < prior_weight <= 1.0:
            raise ValueError(
                f"prior_weight must be in (0, 1], got {prior_weight}"
            )
        self.model = model
        self.prior_weight = prior_weight

    def weights(self, keys: Sequence) -> np.ndarray:
        """One multiplier per key, each in ``[prior_weight, 1]``."""
        k = len(keys)
        if k <= 1:
            return np.ones(k)
        votes = consistency_votes(self.model, keys)
        inconsistent_fraction = 1.0 - votes / (k - 1)
        return self.prior_weight ** inconsistent_fraction


@dataclass(frozen=True)
class TopologyConfig:
    """Topology knobs the V stage consults (``FilterConfig.topology``).

    Attributes:
        model: the fitted :class:`~repro.topology.transit.TransitModel`
            (``EVDataset.topology`` for generated worlds).
        prune: drop majority-inconsistent evidence before feature
            comparison (:class:`ReachabilityPruner`).
        prior: multiply Eq. 1 scores by consistency weights
            (:class:`TransitionPrior`).
        prior_weight: the prior's floor multiplier for fully
            inconsistent evidence.
    """

    model: TransitModel
    prune: bool = True
    prior: bool = True
    prior_weight: float = 0.25

    def __post_init__(self) -> None:
        if self.model is None:
            raise ValueError("model must be a fitted TransitModel")
        if not 0.0 < self.prior_weight <= 1.0:
            raise ValueError(
                f"prior_weight must be in (0, 1], got {self.prior_weight}"
            )
