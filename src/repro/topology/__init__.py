"""Camera-graph topology: reachability pruning and transit priors.

The paper's V stage treats every candidate VID in a scenario as
equally plausible, no matter where and when the scenario was filmed.
City-scale systems (CLIQUE; spatial-temporal fusion re-id) exploit the
opposite: cameras form a graph, transits take time, and a sighting
pair that no one could have traveled between is evidence *against* a
candidate, not for it.  This package learns that structure from the
mobility traces the datagen layer already produces and feeds it to
the matcher:

* :mod:`repro.topology.graph` — :class:`CameraGraph`: cells as nodes,
  observed one-tick transitions as edges with per-edge transit-time
  statistics (:class:`EdgeStats`), and the all-pairs hop-distance
  envelope that makes reachability tests sound.
* :mod:`repro.topology.transit` — :class:`TransitModel`: fitting,
  queries, serialization (rides inside saved ``.npz`` worlds).
* :mod:`repro.topology.matching` — the V-stage consumers:
  :class:`ReachabilityPruner` (drop impossible evidence before feature
  comparison), :class:`TransitionPrior` (consistency-weight Eq. 1
  scores), and :class:`TopologyConfig` (the ``FilterConfig.topology``
  payload; off by default).

The layering mirrors the rest of the repo: this package depends only
on ``world``/``mobility``-shaped inputs (anything with ``locate`` /
``neighbors`` / trajectories) and scenario-key-shaped evidence; the
core matcher imports *it*, never the reverse.
"""

from repro.topology.graph import CameraGraph, EdgeStats
from repro.topology.matching import (
    ReachabilityPruner,
    TopologyConfig,
    TransitionPrior,
    consistency_matrix,
    consistency_votes,
)
from repro.topology.transit import DEFAULT_QUANTILE, TransitModel

__all__ = [
    "CameraGraph",
    "DEFAULT_QUANTILE",
    "EdgeStats",
    "ReachabilityPruner",
    "TopologyConfig",
    "TransitModel",
    "TransitionPrior",
    "consistency_matrix",
    "consistency_votes",
]
