"""Fitting a :class:`~repro.topology.graph.CameraGraph` from traces.

:meth:`TransitModel.fit` consumes the ground-truth mobility traces the
datagen layer already produces (``EVDataset.traces``) and learns, per
directed cell edge, how often and how fast people transit it.  The
model is what every topology consumer holds: the V stage's pruner and
prior, the convoy join, the CLI's ``topology`` verbs and the cluster
workers' ``stats`` report.

The model pickles cleanly (plain dataclasses + numpy arrays), so a
:class:`~repro.cluster.worker.WorkerSpec` can carry topology-enabled
matcher configuration across a process spawn, and it round-trips
through the dataset ``.npz`` format via :meth:`to_arrays` /
:meth:`from_arrays` (the hop matrix is recomputed on load rather than
stored: it is quadratic in cells and derivable in milliseconds).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.topology.graph import CameraGraph, EdgeStats

DEFAULT_QUANTILE = 0.95


class TransitModel:
    """A fitted camera graph plus the adjacency coverage it achieved.

    Attributes:
        graph: the fitted :class:`~repro.topology.graph.CameraGraph`.
        coverage: fraction of the grid's directed neighbor pairs that
            the traces actually exercised (the *fitted-edge coverage*
            the inspect report prints).  Low coverage means the traces
            were too short or too sparse to see most physical
            adjacencies; pruning stays sound either way (unseen cells
            are unreachable, and no fitted trace ever crossed them),
            but a production deployment would want this near 1.0.
    """

    def __init__(self, graph: CameraGraph, coverage: float) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        self.graph = graph
        self.coverage = coverage

    @property
    def quantile(self) -> float:
        """The edge transit-time quantile level the fit calibrated."""
        return self.graph.quantile

    @classmethod
    def fit(cls, traces, grid, quantile: float = DEFAULT_QUANTILE) -> "TransitModel":
        """Learn the camera graph from ground-truth traces.

        Args:
            traces: a :class:`~repro.mobility.trace.TraceSet` (any
                iterable of trajectories works).
            grid: the cell decomposition the scenarios use
                (:class:`~repro.world.cells.CellGrid` or
                :class:`~repro.world.cells.HexCellGrid`).
            quantile: level for each edge's calibrated
                ``quantile_ticks`` upper bound.

        Every consecutive same-person tick pair whose cells differ is
        one edge traversal; its enter-to-enter time is the dwell spent
        in the source cell before the move.  The resulting edge set is
        exactly the set of one-tick transitions, which is what makes
        the hop-distance envelope cover every fitted trace (see
        :mod:`repro.topology.graph`).
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        transits: Dict[Tuple[int, int], List[int]] = {}
        for trajectory in traces:
            cells = [grid.locate(p).cell_id for p in trajectory.points]
            if not cells:
                continue
            entered = 0  # tick at which the current cell was entered
            for tick in range(1, len(cells)):
                if cells[tick] == cells[tick - 1]:
                    continue
                edge = (cells[tick - 1], cells[tick])
                transits.setdefault(edge, []).append(tick - entered)
                entered = tick
        edges = {
            edge: _edge_stats(times, quantile)
            for edge, times in transits.items()
        }
        graph = CameraGraph(grid.num_cells, edges, quantile)
        return cls(graph, _adjacency_coverage(grid, edges.keys()))

    # -- queries ---------------------------------------------------------
    def reachable(
        self, cell_a: int, tick_a: int, cell_b: int, tick_b: int
    ) -> bool:
        """Is the sighting pair spatiotemporally consistent?

        Order-free: the earlier sighting must be able to reach the
        later one through observed transitions.  Two same-tick
        sightings are consistent only in the same cell.
        """
        if tick_b < tick_a:
            cell_a, tick_a, cell_b, tick_b = cell_b, tick_b, cell_a, tick_a
        return self.graph.reachable(cell_a, cell_b, tick_b - tick_a)

    def transit_bound(self, u: int, v: int) -> "int | None":
        """The fitted ``u -> v`` quantile transit time, or ``None``.

        The convoy window join's per-hop dwell bound: co-travelers
        moving together should not take much longer than the
        calibrated quantile of everyone else's transits.
        """
        stats = self.graph.edge(u, v)
        return None if stats is None else stats.quantile_ticks

    def describe(self) -> Dict[str, float]:
        """Numeric summary (inspect report, worker ``stats``, bench)."""
        graph = self.graph
        counts = [s.count for _e, s in graph.edges()]
        means = [s.mean_ticks for _e, s in graph.edges()]
        return {
            "nodes": float(graph.num_cells),
            "edges": float(graph.num_edges),
            "coverage": float(self.coverage),
            "quantile": float(graph.quantile),
            "traversals": float(sum(counts)),
            "mean_transit_ticks": float(np.mean(means)) if means else 0.0,
        }

    # -- persistence -----------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar form for ``np.savez`` (see :mod:`repro.datagen.io`)."""
        items = sorted(self.graph.edges(), key=lambda item: item[0])
        edges = np.array(
            [edge for edge, _stats in items], dtype=np.int64
        ).reshape(len(items), 2)
        stats = np.array(
            [
                (s.count, s.mean_ticks, s.var_ticks, s.min_ticks, s.quantile_ticks)
                for _edge, s in items
            ],
            dtype=np.float64,
        ).reshape(len(items), 5)
        meta = np.array(
            [self.graph.num_cells, self.graph.quantile, self.coverage],
            dtype=np.float64,
        )
        return {"topo_edges": edges, "topo_stats": stats, "topo_meta": meta}

    @classmethod
    def from_arrays(
        cls, edges: np.ndarray, stats: np.ndarray, meta: np.ndarray
    ) -> "TransitModel":
        """Rebuild a fitted model from :meth:`to_arrays` columns."""
        num_cells, quantile, coverage = (
            int(meta[0]), float(meta[1]), float(meta[2]),
        )
        edge_map = {
            (int(edges[i, 0]), int(edges[i, 1])): EdgeStats(
                count=int(stats[i, 0]),
                mean_ticks=float(stats[i, 1]),
                var_ticks=float(stats[i, 2]),
                min_ticks=int(stats[i, 3]),
                quantile_ticks=int(stats[i, 4]),
            )
            for i in range(edges.shape[0])
        }
        return cls(CameraGraph(num_cells, edge_map, quantile), coverage)


def _edge_stats(times: List[int], quantile: float) -> EdgeStats:
    array = np.asarray(times, dtype=np.float64)
    return EdgeStats(
        count=len(times),
        mean_ticks=float(array.mean()),
        var_ticks=float(array.var()),
        min_ticks=int(array.min()),
        quantile_ticks=int(np.ceil(np.quantile(array, quantile))),
    )


def _adjacency_coverage(grid, fitted: Iterable[Tuple[int, int]]) -> float:
    """Observed fraction of the grid's directed neighbor pairs."""
    adjacent = {
        (cell.cell_id, neighbor.cell_id)
        for cell in grid
        for neighbor in grid.neighbors(cell)
    }
    if not adjacent:
        return 0.0
    return len(adjacent & set(fitted)) / len(adjacent)
