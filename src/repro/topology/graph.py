"""The camera graph: cells as nodes, observed transits as edges.

A city's cameras are not interchangeable: a vehicle filmed at camera A
at tick ``t`` can only reappear at cameras *reachable* from A within
the elapsed time.  CLIQUE-style systems exploit exactly this adjacency
structure.  Here the nodes are the ``world`` cells (each cell is one
camera's coverage area) and the edges are **observed** one-tick cell
transitions from mobility traces, each annotated with transit-time
statistics.

Two different questions are answered by two different structures, and
keeping them apart is what makes pruning *sound*:

* **"Could someone have gotten from u to v in Δ ticks?"** — answered
  by the all-pairs hop-distance matrix over the observed transition
  edges.  Every per-tick move in a fitted trace is an edge, so a
  person sighted at ``u`` and ``Δ`` ticks later at ``v`` walked a path
  of length ``Δ`` through observed edges; hence ``Δ >= hops(u, v)``
  holds for *every* sighting pair of every fitted trace, by
  construction.  This lower-bound envelope is what
  :class:`~repro.topology.matching.ReachabilityPruner` tests.
  (Per-edge transit-time quantiles can NOT be composed into such a
  bound: a person who dwells at ``u`` and then hops to adjacent ``v``
  produces a large *enter-to-enter* edge time but a tiny
  sighting-to-sighting gap — composing edge quantiles would prune that
  true pair.)
* **"How long does the u -> v transit typically take?"** — answered by
  the per-edge :class:`EdgeStats` (count, mean, variance, and a
  calibrated upper quantile of enter-to-enter transit times).  These
  feed the convoy window join's dwell bound and the inspect report;
  they are deliberately *not* part of the pruning envelope.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

import numpy as np


@dataclass(frozen=True)
class EdgeStats:
    """Transit-time statistics of one directed cell edge.

    Times are *enter-to-enter*: the tick count from entering the source
    cell to entering the destination cell (i.e. the dwell time at the
    source before this transition), measured over every traversal in
    the fitted traces.

    Attributes:
        count: traversals observed.
        mean_ticks: mean enter-to-enter transit time.
        var_ticks: population variance of the transit time.
        min_ticks: fastest observed transit (>= 1 by construction).
        quantile_ticks: the calibrated upper quantile of the transit
            time (at the :class:`CameraGraph`'s quantile level) — the
            "typical worst case" the convoy join bounds dwell with.
    """

    count: int
    mean_ticks: float
    var_ticks: float
    min_ticks: int
    quantile_ticks: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.min_ticks <= 0:
            raise ValueError(
                f"min_ticks must be positive, got {self.min_ticks}"
            )
        if self.quantile_ticks < self.min_ticks:
            raise ValueError(
                f"quantile_ticks ({self.quantile_ticks}) below "
                f"min_ticks ({self.min_ticks})"
            )


class CameraGraph:
    """Directed graph over cell ids with fitted transit statistics.

    Attributes:
        num_cells: the world's cell count (nodes ``0..num_cells-1``;
            unvisited cells are isolated nodes).
        quantile: the level at which every edge's ``quantile_ticks``
            was calibrated.
    """

    def __init__(
        self,
        num_cells: int,
        edges: Mapping[Tuple[int, int], EdgeStats],
        quantile: float,
    ) -> None:
        if num_cells <= 0:
            raise ValueError(f"num_cells must be positive, got {num_cells}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        for (u, v) in edges:
            if not (0 <= u < num_cells and 0 <= v < num_cells):
                raise ValueError(
                    f"edge ({u}, {v}) outside cell range [0, {num_cells})"
                )
            if u == v:
                raise ValueError(f"self-loop edge ({u}, {v}) not allowed")
        self.num_cells = num_cells
        self.quantile = quantile
        self._edges: Dict[Tuple[int, int], EdgeStats] = dict(edges)
        self._hops = _hop_matrix(num_cells, self._edges.keys())

    @property
    def num_edges(self) -> int:
        """Fitted directed edges."""
        return len(self._edges)

    @property
    def hops(self) -> np.ndarray:
        """All-pairs hop-distance matrix (int32; ``-1`` = unreachable).

        ``hops[u, v]`` is the shortest observed-transition path length
        from ``u`` to ``v``; the diagonal is 0.  This is the pruning
        envelope — see the module docstring for why hop counts (not
        transit-time quantiles) are the sound bound.
        """
        return self._hops

    def edge(self, u: int, v: int) -> "EdgeStats | None":
        """Fitted stats of the directed edge ``u -> v``, or ``None``."""
        return self._edges.get((u, v))

    def edges(self) -> Iterator[Tuple[Tuple[int, int], EdgeStats]]:
        """All fitted ``((u, v), stats)`` pairs."""
        return iter(self._edges.items())

    def hop_distance(self, u: int, v: int) -> int:
        """Shortest observed path length ``u -> v`` (``-1`` = none)."""
        return int(self._hops[u, v])

    def reachable(self, u: int, v: int, ticks: int) -> bool:
        """Can someone sighted at ``u`` be at ``v`` ``ticks`` later?

        True iff an observed-transition path of length <= ``ticks``
        exists.  ``reachable(u, u, 0)`` is always True; a negative
        ``ticks`` is never reachable (time does not run backwards).
        """
        if ticks < 0:
            return False
        hops = int(self._hops[u, v])
        return hops >= 0 and ticks >= hops


def _hop_matrix(num_cells: int, edges) -> np.ndarray:
    """All-pairs BFS over the directed edge set (``-1`` = unreachable)."""
    adjacency: Dict[int, list] = {}
    for (u, v) in edges:
        adjacency.setdefault(u, []).append(v)
    hops = np.full((num_cells, num_cells), -1, dtype=np.int32)
    for source in range(num_cells):
        hops[source, source] = 0
        if source not in adjacency:
            continue
        queue = deque([source])
        while queue:
            node = queue.popleft()
            depth = hops[source, node] + 1
            for neighbor in adjacency.get(node, ()):
                if hops[source, neighbor] < 0:
                    hops[source, neighbor] = depth
                    queue.append(neighbor)
    return hops
