#!/usr/bin/env python
"""Fail CI when the newest bench entries regress against their history.

The perf-regression sentinel's CI surface.  Every benchmark run appends
its artifact payload to ``BENCH_HISTORY.jsonl`` (one JSON object per
line: ``{artifact, ts, git_sha, backend_label, payload}`` — see
:mod:`repro.obs.regress`); this script loads that history and judges
each artifact's **newest** entry against

* absolute floors/ceilings (e.g. ``split.speedup`` must stay above its
  floor no matter what the history says), and
* a relative tolerance against the **median** of the earlier entries —
  the baseline a single noisy CI run cannot move.

The rules live in :data:`repro.obs.regress.DEFAULT_RULES` so the
library, its tests, and CI all judge the same thresholds.

Usage (after running the benchmarks)::

    python scripts/check_bench_regression.py
    python scripts/check_bench_regression.py --history path/to/BENCH_HISTORY.jsonl

Exit status: 0 when every rule passes, 1 on any regression or a
malformed history, 2 when the history file is missing entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.regress import (  # noqa: E402
    DEFAULT_RULES,
    HISTORY_NAME,
    check_history,
    load_history,
)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / HISTORY_NAME,
        help=f"the history file to judge (default: {HISTORY_NAME} "
        "at the repo root)",
    )
    args = parser.parse_args(argv)
    if not args.history.is_file():
        print(f"MISSING {args.history}: no bench history to judge")
        return 2
    try:
        entries = load_history(args.history)
    except ValueError as exc:
        print(f"INVALID {args.history.name}: {exc}")
        return 1
    if not entries:
        print(f"MISSING {args.history.name}: history is empty")
        return 2
    artifacts = sorted({entry["artifact"] for entry in entries})
    print(
        f"judging {len(entries)} history entries across "
        f"{len(artifacts)} artifacts ({', '.join(artifacts)}) "
        f"against {len(DEFAULT_RULES)} rules"
    )
    failures = check_history(entries, DEFAULT_RULES)
    covered = {
        (rule.artifact, rule.metric)
        for rule in DEFAULT_RULES
        if any(entry["artifact"] == rule.artifact for entry in entries)
    }
    for artifact, metric in sorted(covered):
        verdicts = [f for f in failures if f.startswith(f"{artifact}:{metric}:")]
        if not verdicts:
            print(f"ok      {artifact}:{metric}")
    for failure in failures:
        print(f"FAIL    {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
