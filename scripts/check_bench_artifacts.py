#!/usr/bin/env python
"""Fail CI when a benchmark's BENCH_*.json artifact is missing or malformed.

Every perf-tier benchmark that advertises a trajectory file (any
``BENCH_<name>.json`` mentioned in its source) must actually have
written it — a bench that silently stops emitting would otherwise
break the perf trajectory without failing anything.

Each declared file must exist at the repo root, parse as JSON, and
satisfy the trajectory schema enforced at write time by
:func:`repro.bench.reporting.validate_bench_payload`: a non-empty
object whose leaves are all finite numbers (nested string-keyed
objects allowed for grouping).

Usage (after running the benchmarks)::

    python scripts/check_bench_artifacts.py [bench_file.py ...]
    python scripts/check_bench_artifacts.py --report sample_report.md
    python scripts/check_bench_artifacts.py --chrome-trace trace.json

With no positional arguments, every ``benchmarks/test_*.py`` that
mentions a ``BENCH_*.json`` name is checked.  ``--report`` additionally
validates a flight-recorder run report (``repro match --report`` /
``repro report --from-events``): the file must carry every pinned
section heading.  ``--chrome-trace`` validates a merged cluster trace
(the gateway's ``trace`` verb): Chrome trace-event JSON with complete
spans from at least two processes, all under one trace id.
``--collapsed`` / ``--speedscope`` validate profiler artifacts
(``repro cluster profile`` / ``repro match --profile``): non-empty
stacks with positive counts, speedscope weights monotone
non-increasing per profile with all frame indices in range, and —
with ``--profile-workers N`` — stacks from at least N distinct
``worker=<id>`` roots (collapsed) / N profiles (speedscope).  Exit
status 0 when everything passes.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.reporting import validate_bench_payload  # noqa: E402
from repro.obs import RUN_REPORT_SECTIONS  # noqa: E402

BENCH_NAME = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")

#: Per-artifact required top-level entries.  A bench edit that silently
#: drops one of these measurements must fail CI even though the
#: remaining payload still satisfies the generic schema.
REQUIRED_ENTRIES = {
    "BENCH_kernels.json": ("split", "split_65536", "filter"),
    "BENCH_obs.json": ("overhead", "event_shipping", "profiler"),
    "BENCH_topology.json": ("dense", "sparse"),
}


def declared_artifacts(sources) -> dict:
    """``{artifact name: [declaring bench files]}`` from the sources."""
    declared: dict = {}
    for source in sources:
        for name in sorted(set(BENCH_NAME.findall(source.read_text()))):
            declared.setdefault(name, []).append(source.name)
    return declared


def check(sources) -> int:
    declared = declared_artifacts(sources)
    if not declared:
        print("no BENCH_*.json artifacts declared by", len(sources), "files")
        return 0
    failures = 0
    for name, owners in sorted(declared.items()):
        path = REPO_ROOT / name
        owner = ", ".join(owners)
        if not path.is_file():
            print(f"MISSING {name} (declared by {owner})")
            failures += 1
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID {name}: not JSON ({exc})")
            failures += 1
            continue
        try:
            validate_bench_payload(payload, name=name)
        except ValueError as exc:
            print(f"INVALID {name}: {exc}")
            failures += 1
            continue
        missing = [
            key
            for key in REQUIRED_ENTRIES.get(name, ())
            if key not in payload
        ]
        if missing:
            print(f"INVALID {name}: missing required entries {missing}")
            failures += 1
            continue
        print(f"ok      {name}: {len(payload)} measurements (from {owner})")
    return 1 if failures else 0


def check_report(path: Path) -> int:
    """Validate a flight-recorder run report's pinned sections."""
    if not path.is_file():
        print(f"MISSING report {path}")
        return 1
    text = path.read_text()
    failures = 0
    for section in RUN_REPORT_SECTIONS:
        if section not in text:
            print(f"INVALID report {path.name}: missing section {section!r}")
            failures += 1
    if not text.lstrip().startswith("# Run report:"):
        print(f"INVALID report {path.name}: missing run-report title")
        failures += 1
    if not failures:
        print(f"ok      {path.name}: all {len(RUN_REPORT_SECTIONS)} sections present")
    return 1 if failures else 0


def check_chrome_trace(path: Path) -> int:
    """Validate a merged cluster Chrome trace artifact's schema.

    The shape the ISSUE pins: ``traceEvents`` holding complete
    (``ph == "X"``) spans from >= 2 distinct pids (gateway + at least
    one worker), every span's args carrying the one shared trace id,
    and every non-root parent id resolving inside the trace.
    """
    if not path.is_file():
        print(f"MISSING chrome trace {path}")
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"INVALID chrome trace {path.name}: not JSON ({exc})")
        return 1
    failures = 0
    spans = [
        e for e in payload.get("traceEvents", ()) if e.get("ph") == "X"
    ]
    if not spans:
        print(f"INVALID chrome trace {path.name}: no complete (ph=X) spans")
        return 1
    pids = {e.get("pid") for e in spans}
    if len(pids) < 2:
        print(
            f"INVALID chrome trace {path.name}: spans from only "
            f"{len(pids)} process(es); a merged cluster trace needs the "
            "gateway plus at least one worker"
        )
        failures += 1
    trace_ids = {e.get("args", {}).get("trace_id") for e in spans}
    if len(trace_ids) != 1 or None in trace_ids:
        print(
            f"INVALID chrome trace {path.name}: expected one shared "
            f"trace id, saw {sorted(map(str, trace_ids))}"
        )
        failures += 1
    span_ids = {e.get("args", {}).get("span_id") for e in spans}
    dangling = [
        parent
        for e in spans
        if (parent := e.get("args", {}).get("parent_span_id")) is not None
        and parent not in span_ids
    ]
    if dangling:
        print(
            f"INVALID chrome trace {path.name}: dangling parent span "
            f"ids {sorted(set(dangling))}"
        )
        failures += 1
    if not failures:
        print(
            f"ok      {path.name}: {len(spans)} spans across "
            f"{len(pids)} processes, one trace id"
        )
    return 1 if failures else 0


def check_collapsed(path: Path, profile_workers: int) -> int:
    """Validate a collapsed-stack profile (``frame;frame count`` lines).

    Every line must carry a non-empty stack and a positive integer
    count; with ``profile_workers`` > 0 the stacks must be rooted under
    at least that many distinct ``worker=<id>`` frames — the shape the
    cluster ``profile`` verb merges.
    """
    if not path.is_file():
        print(f"MISSING collapsed profile {path}")
        return 1
    failures = 0
    workers = set()
    stacks = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit() or int(count) <= 0:
            print(
                f"INVALID collapsed {path.name}:{lineno}: expected "
                f"'frame;frame <count>', got {line!r}"
            )
            failures += 1
            continue
        frames = stack.split(";")
        if not all(frames):
            print(f"INVALID collapsed {path.name}:{lineno}: empty frame")
            failures += 1
            continue
        stacks += 1
        if frames[0].startswith("worker="):
            workers.add(frames[0])
    if stacks == 0:
        print(f"INVALID collapsed {path.name}: no stacks")
        return 1
    if len(workers) < profile_workers:
        print(
            f"INVALID collapsed {path.name}: stacks from only "
            f"{len(workers)} worker(s) {sorted(workers)}; "
            f"expected >= {profile_workers}"
        )
        failures += 1
    if not failures:
        suffix = f" from {len(workers)} workers" if workers else ""
        print(f"ok      {path.name}: {stacks} stacks{suffix}")
    return 1 if failures else 0


def check_speedscope(path: Path, profile_workers: int) -> int:
    """Validate a speedscope ``"sampled"`` document.

    Each profile must have parallel ``samples``/``weights`` arrays,
    frame indices inside the shared frame table, and weights monotone
    non-increasing (the exporter sorts stacks heaviest-first, so an
    out-of-order weight means a broken export).
    """
    if not path.is_file():
        print(f"MISSING speedscope profile {path}")
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"INVALID speedscope {path.name}: not JSON ({exc})")
        return 1
    frames = payload.get("shared", {}).get("frames", [])
    profiles = payload.get("profiles", [])
    failures = 0
    if not profiles:
        print(f"INVALID speedscope {path.name}: no profiles")
        return 1
    if len(profiles) < profile_workers:
        print(
            f"INVALID speedscope {path.name}: only {len(profiles)} "
            f"profile(s); expected >= {profile_workers}"
        )
        failures += 1
    for profile in profiles:
        name = profile.get("name", "?")
        samples = profile.get("samples", [])
        weights = profile.get("weights", [])
        if not samples or len(samples) != len(weights):
            print(
                f"INVALID speedscope {path.name} [{name}]: "
                f"{len(samples)} samples vs {len(weights)} weights"
            )
            failures += 1
            continue
        flat = [idx for stack in samples for idx in stack]
        if any(not 0 <= idx < len(frames) for idx in flat):
            print(
                f"INVALID speedscope {path.name} [{name}]: frame index "
                f"out of range (table has {len(frames)} frames)"
            )
            failures += 1
        if any(w <= 0 for w in weights):
            print(f"INVALID speedscope {path.name} [{name}]: weight <= 0")
            failures += 1
        if any(a < b for a, b in zip(weights, weights[1:])):
            print(
                f"INVALID speedscope {path.name} [{name}]: weights not "
                "monotone non-increasing (stacks must sort heaviest first)"
            )
            failures += 1
    if not failures:
        print(
            f"ok      {path.name}: {len(profiles)} profiles, "
            f"{len(frames)} shared frames"
        )
    return 1 if failures else 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sources", nargs="*", help="bench files to scan")
    parser.add_argument(
        "--report",
        type=Path,
        help="also validate a run-report markdown file's sections",
    )
    parser.add_argument(
        "--chrome-trace",
        type=Path,
        help="also validate a merged cluster Chrome trace artifact",
    )
    parser.add_argument(
        "--collapsed",
        type=Path,
        help="also validate a collapsed-stack profile artifact",
    )
    parser.add_argument(
        "--speedscope",
        type=Path,
        help="also validate a speedscope profile artifact",
    )
    parser.add_argument(
        "--profile-workers",
        type=int,
        default=0,
        help="distinct worker= roots (--collapsed) / profiles "
        "(--speedscope) the profile artifacts must span",
    )
    args = parser.parse_args(argv)
    if args.sources:
        sources = [Path(arg) for arg in args.sources]
        missing = [p for p in sources if not p.is_file()]
        if missing:
            print("no such bench file:", ", ".join(str(p) for p in missing))
            return 2
    else:
        sources = sorted((REPO_ROOT / "benchmarks").glob("test_*.py"))
    status = check(sources)
    if args.report is not None:
        status = max(status, check_report(args.report))
    if args.chrome_trace is not None:
        status = max(status, check_chrome_trace(args.chrome_trace))
    if args.collapsed is not None:
        status = max(
            status, check_collapsed(args.collapsed, args.profile_workers)
        )
    if args.speedscope is not None:
        status = max(
            status, check_speedscope(args.speedscope, args.profile_workers)
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
