#!/usr/bin/env python
"""Fail CI when a benchmark forgets to emit its BENCH_*.json artifact.

Every perf-tier benchmark that advertises a trajectory file (any
``BENCH_<name>.json`` mentioned in its source) must actually have
written it — a bench that silently stops emitting would otherwise
break the perf trajectory without failing anything.

Usage (after running the benchmarks)::

    python scripts/check_bench_artifacts.py [bench_file.py ...]

With no arguments, every ``benchmarks/test_*.py`` that mentions a
``BENCH_*.json`` name is checked.  For each declared name the file
must exist at the repo root, parse as JSON, and be a non-empty object.
Exit status 0 when all declared artifacts are present and valid.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")


def declared_artifacts(sources) -> dict:
    """``{artifact name: [declaring bench files]}`` from the sources."""
    declared: dict = {}
    for source in sources:
        for name in sorted(set(BENCH_NAME.findall(source.read_text()))):
            declared.setdefault(name, []).append(source.name)
    return declared


def check(sources) -> int:
    declared = declared_artifacts(sources)
    if not declared:
        print("no BENCH_*.json artifacts declared by", len(sources), "files")
        return 0
    failures = 0
    for name, owners in sorted(declared.items()):
        path = REPO_ROOT / name
        owner = ", ".join(owners)
        if not path.is_file():
            print(f"MISSING {name} (declared by {owner})")
            failures += 1
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID {name}: not JSON ({exc})")
            failures += 1
            continue
        if not isinstance(payload, dict) or not payload:
            print(f"EMPTY   {name}: expected a non-empty JSON object")
            failures += 1
            continue
        print(f"ok      {name}: {len(payload)} measurements (from {owner})")
    return 1 if failures else 0


def main(argv) -> int:
    if argv:
        sources = [Path(arg) for arg in argv]
        missing = [p for p in sources if not p.is_file()]
        if missing:
            print("no such bench file:", ", ".join(str(p) for p in missing))
            return 2
    else:
        sources = sorted((REPO_ROOT / "benchmarks").glob("test_*.py"))
    return check(sources)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
