"""Edge-case tests across modules: empty inputs, degenerate worlds,
configuration corners that the mainline tests do not reach."""

import numpy as np
import pytest

from repro.core.matcher import EVMatcher, MatcherConfig
from repro.core.set_splitting import SetSplitter, SplitConfig
from repro.core.vid_filtering import FilterConfig, VIDFilter
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.mapreduce.engine import MapReduceEngine
from repro.parallel.filter_job import ParallelVIDFilter
from repro.parallel.split_job import ParallelSetSplitter
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID, VID


def single_scenario_store():
    key = ScenarioKey(0, 0)
    f = np.array([1.0, 0.0])
    return ScenarioStore(
        [
            EVScenario(
                e=EScenario(key=key, inclusive=frozenset({EID(0), EID(1)})),
                v=VScenario(
                    key=key,
                    detections=(
                        Detection(0, f, VID(0)),
                        Detection(1, np.array([0.0, 1.0]), VID(1)),
                    ),
                ),
            )
        ]
    )


class TestDegenerateStores:
    def test_splitter_with_one_scenario_cannot_distinguish(self):
        store = single_scenario_store()
        result = SetSplitter(store, SplitConfig(min_gap_ticks=0)).run(
            [EID(0)], universe=frozenset({EID(0), EID(1)})
        )
        # One scenario containing both EIDs separates nothing.
        assert EID(0) in result.unresolved

    def test_matcher_on_degenerate_store_does_not_crash(self):
        store = single_scenario_store()
        matcher = EVMatcher(store)
        report = matcher.match([EID(0)])
        assert EID(0) in report.results

    def test_universe_of_one_is_trivially_distinguished(self):
        key = ScenarioKey(0, 0)
        store = ScenarioStore(
            [
                EVScenario(
                    e=EScenario(key=key, inclusive=frozenset({EID(0)})),
                    v=VScenario(key=key, detections=()),
                )
            ]
        )
        result = SetSplitter(store, SplitConfig(min_gap_ticks=0)).run(
            [EID(0)], universe=frozenset({EID(0)})
        )
        # Candidate set starts as {EID(0)}: already a singleton.
        assert result.distinguished == frozenset({EID(0)})
        assert result.evidence[EID(0)] == []

    def test_store_with_no_eids_rejected_by_splitter(self):
        key = ScenarioKey(0, 0)
        store = ScenarioStore(
            [
                EVScenario(
                    e=EScenario(key=key, inclusive=frozenset()),
                    v=VScenario(key=key, detections=()),
                )
            ]
        )
        with pytest.raises(ValueError, match="no EIDs"):
            SetSplitter(store).run([EID(0)])


class TestFilterEdges:
    def test_all_scenarios_empty_yields_empty_result(self):
        key0, key1 = ScenarioKey(0, 0), ScenarioKey(0, 1)
        store = ScenarioStore(
            [
                EVScenario(
                    e=EScenario(key=k, inclusive=frozenset({EID(0)})),
                    v=VScenario(key=k, detections=()),
                )
                for k in (key0, key1)
            ]
        )
        result = VIDFilter(store).match_one(EID(0), [key0, key1])
        assert result.is_empty
        assert result.agreement == 0.0

    def test_parallel_filter_max_evidence(self, ideal_dataset):
        engine = MapReduceEngine()
        split = SetSplitter(ideal_dataset.store, SplitConfig(seed=7)).run(
            list(ideal_dataset.sample_targets(5, seed=1))
        )
        filt = ParallelVIDFilter(
            ideal_dataset.store, engine, FilterConfig(max_evidence=2)
        )
        results, _stats = filt.match(split.evidence)
        for result in results.values():
            assert len(result.scenario_keys) <= 2

    def test_parallel_filter_invalid_partitions(self, ideal_dataset):
        with pytest.raises(ValueError):
            ParallelVIDFilter(
                ideal_dataset.store, MapReduceEngine(), num_input_partitions=0
            )

    def test_parallel_splitter_invalid_partitions(self, ideal_dataset):
        with pytest.raises(ValueError):
            ParallelSetSplitter(
                ideal_dataset.store, MapReduceEngine(), num_input_partitions=0
            )


class TestWorldEdges:
    def test_one_cell_world_matches_nothing_distinguishable(self):
        """A single giant cell: everyone always co-occurs, so nobody is
        electronically distinguishable; matching degrades gracefully."""
        dataset = build_dataset(
            ExperimentConfig(
                num_people=20,
                cells_per_side=1,
                region_side=200.0,
                duration=100.0,
                warmup=0.0,
                seed=5,
            )
        )
        matcher = EVMatcher(dataset.store)
        report = matcher.match(list(dataset.sample_targets(5, seed=1)))
        split_result = SetSplitter(dataset.store).run(
            list(dataset.sample_targets(5, seed=1))
        )
        assert len(split_result.unresolved) == 5
        # The V stage has no evidence to work with: empty results, no crash.
        for result in report.results.values():
            assert result.is_empty

    def test_single_person_world(self):
        dataset = build_dataset(
            ExperimentConfig(
                num_people=1,
                cells_per_side=2,
                region_side=200.0,
                duration=100.0,
                warmup=0.0,
                seed=6,
            )
        )
        matcher = EVMatcher(dataset.store)
        result = matcher.match_one(EID(0))
        # A universe of one is trivially matched to the only appearance.
        assert result.eid == EID(0)

    def test_very_short_trace(self):
        dataset = build_dataset(
            ExperimentConfig(
                num_people=10,
                cells_per_side=2,
                region_side=200.0,
                duration=10.0,
                sample_dt=10.0,
                warmup=0.0,
                seed=7,
            )
        )
        assert dataset.traces.num_ticks == 2
        assert len(dataset.store) > 0


class TestReportEdges:
    def test_score_counts_unmatched_targets(self):
        store = single_scenario_store()
        matcher = EVMatcher(store)
        report = matcher.match([EID(0), EID(1)])
        score = report.score({EID(0): VID(0), EID(1): VID(1)})
        assert score.total == 2

    def test_match_universal_with_explicit_universe(self, ideal_dataset):
        universe = list(ideal_dataset.eids)[:30]
        matcher = EVMatcher(ideal_dataset.store)
        report = matcher.match_universal(universe=universe)
        assert set(report.targets) == set(universe)
