"""Tests for the V stage: membership vectors, scoring, choices, pooling."""

import numpy as np
import pytest

from repro.core.vid_filtering import (
    FilterConfig,
    MatchResult,
    VIDFilter,
    membership_vector,
)
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID, VID
from repro.world.features import AppearanceModel, FeatureSpace


def unit(*values):
    v = np.array(values, dtype=float)
    return v / np.linalg.norm(v)


def make_store_with_detections(cells, appearance=None, noise_rng=None):
    """cells: list of lists of VID indices; one scenario per entry."""
    if appearance is None:
        appearance = AppearanceModel(
            num_vids=32,
            space=FeatureSpace(observation_noise=0.2, outlier_rate=0.0),
            seed=0,
        )
    rng = noise_rng if noise_rng is not None else np.random.default_rng(0)
    scenarios = []
    det_id = 0
    for i, vids in enumerate(cells):
        key = ScenarioKey(cell_id=i, tick=i)
        detections = []
        for v in vids:
            detections.append(
                Detection(
                    detection_id=det_id,
                    feature=appearance.observe(VID(v), rng),
                    true_vid=VID(v),
                )
            )
            det_id += 1
        scenarios.append(
            EVScenario(
                e=EScenario(key=key, inclusive=frozenset({EID(v) for v in vids})),
                v=VScenario(key=key, detections=tuple(detections)),
            )
        )
    return ScenarioStore(scenarios)


class TestMembershipVector:
    def test_self_membership_is_one(self):
        f = np.stack([unit(1, 0), unit(0, 1)])
        vec = membership_vector(f, f)
        np.testing.assert_allclose(vec, [1.0, 1.0])

    def test_empty_scenarios(self):
        f = np.stack([unit(1, 0)])
        assert membership_vector(np.empty((0, 0)), f).shape == (0,)
        np.testing.assert_allclose(
            membership_vector(f, np.empty((0, 0))), [0.0]
        )

    def test_picks_best_match(self):
        a = np.stack([unit(1, 0)])
        b = np.stack([unit(0, 1), unit(1, 0.1)])
        vec = membership_vector(a, b)
        # best match is the near-identical second row
        assert vec[0] > 0.9

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 8))
        b = rng.standard_normal((7, 8))
        a /= np.linalg.norm(a, axis=1, keepdims=True)
        b /= np.linalg.norm(b, axis=1, keepdims=True)
        vec = membership_vector(a, b)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)


class TestFilterConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_evidence": 0},
            {"agreement_threshold": 0.0},
            {"agreement_threshold": 1.0},
            {"min_agreement": 0.0},
            {"min_agreement": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FilterConfig(**kwargs)


class TestVIDFilter:
    def test_clean_features_match_correctly(self):
        store = make_store_with_detections(
            [[0, 1, 2], [0, 3, 4], [0, 5, 6]]
        )
        vid_filter = VIDFilter(store)
        result = vid_filter.match_one(EID(0), list(store.keys))
        assert not result.is_empty
        assert all(d.true_vid == VID(0) for d in result.chosen)
        assert result.best is not None and result.best.true_vid == VID(0)

    def test_one_choice_per_scenario(self):
        store = make_store_with_detections([[0, 1], [0, 2], [0, 3]])
        result = VIDFilter(store).match_one(EID(0), list(store.keys))
        assert len(result.chosen) == len(result.scenario_keys) == 3

    def test_empty_evidence_gives_empty_result(self):
        store = make_store_with_detections([[0, 1]])
        result = VIDFilter(store).match_one(EID(0), [])
        assert result.is_empty
        assert result.best is None
        assert not result.is_acceptable(FilterConfig())

    def test_detectionless_scenarios_skipped(self):
        store = make_store_with_detections([[0, 1], [], [0, 2]])
        keys = list(store.keys)
        result = VIDFilter(store).match_one(EID(0), keys)
        assert ScenarioKey(1, 1) not in result.scenario_keys
        assert len(result.chosen) == 2

    def test_duplicate_keys_deduplicated(self):
        store = make_store_with_detections([[0, 1], [0, 2]])
        keys = [store.keys[0], store.keys[0], store.keys[1]]
        result = VIDFilter(store).match_one(EID(0), keys)
        assert len(result.scenario_keys) == 2

    def test_max_evidence_cap(self):
        store = make_store_with_detections([[0, 1], [0, 2], [0, 3], [0, 4]])
        vid_filter = VIDFilter(store, FilterConfig(max_evidence=2))
        result = vid_filter.match_one(EID(0), list(store.keys))
        assert len(result.scenario_keys) == 2

    def test_extraction_charged_once_per_scenario(self):
        from repro.metrics.timing import SimulatedClock

        store = make_store_with_detections([[0, 1, 2], [0, 3]])
        clock = SimulatedClock()
        vid_filter = VIDFilter(store, clock=clock)
        vid_filter.match_one(EID(0), list(store.keys))
        first = clock.detections_extracted
        assert first == 5
        # A second target over the same scenarios: no new extraction.
        vid_filter.match_one(EID(1), list(store.keys))
        assert clock.detections_extracted == first
        assert vid_filter.scenarios_extracted == 2

    def test_comparisons_charged_per_target(self):
        from repro.metrics.timing import SimulatedClock

        store = make_store_with_detections([[0, 1], [0, 2]])
        clock = SimulatedClock()
        vid_filter = VIDFilter(store, clock=clock)
        vid_filter.match_one(EID(0), list(store.keys))
        first = clock.comparisons
        assert first == 8  # 2 scenarios x (2 dets x 2 dets) both directions
        vid_filter.match_one(EID(0), list(store.keys))
        assert clock.comparisons == 2 * first  # charged again (per-EID mappers)

    def test_agreement_high_for_consistent_choices(self):
        store = make_store_with_detections([[0, 1], [0, 2], [0, 3]])
        result = VIDFilter(store).match_one(EID(0), list(store.keys))
        assert result.agreement == 1.0
        assert result.is_acceptable(FilterConfig(min_agreement=0.75))

    def test_single_scenario_agreement_is_one(self):
        store = make_store_with_detections([[0, 1]])
        result = VIDFilter(store).match_one(EID(0), [store.keys[0]])
        assert result.agreement == 1.0

    def test_match_many(self):
        store = make_store_with_detections([[0, 1], [0, 1], [1, 2]])
        keys = list(store.keys)
        results = VIDFilter(store).match(
            {EID(0): keys[:2], EID(1): keys}
        )
        assert set(results.keys()) == {EID(0), EID(1)}

    def test_pool_merges_choices(self):
        store = make_store_with_detections([[0, 1], [0, 2], [0, 3], [0, 4]])
        keys = list(store.keys)
        vid_filter = VIDFilter(store)
        a = vid_filter.match_one(EID(0), keys[:2])
        b = vid_filter.match_one(EID(0), keys[2:])
        pooled = vid_filter.pool(a, b)
        assert len(pooled.chosen) == 4
        assert pooled.scenario_keys == a.scenario_keys + b.scenario_keys
        assert 0.0 <= pooled.agreement <= 1.0

    def test_pool_rejects_different_eids(self):
        store = make_store_with_detections([[0, 1], [1, 2]])
        vid_filter = VIDFilter(store)
        a = vid_filter.match_one(EID(0), [store.keys[0]])
        b = vid_filter.match_one(EID(1), [store.keys[1]])
        with pytest.raises(ValueError, match="different EIDs"):
            vid_filter.pool(a, b)

    def test_scores_are_probability_products(self):
        store = make_store_with_detections([[0, 1], [0, 2]])
        result = VIDFilter(store).match_one(EID(0), list(store.keys))
        for score in result.scores:
            assert 0.0 <= score <= 1.0

    def test_missing_target_detection_degrades_not_crashes(self):
        # Target 0 absent from the second scenario's V side entirely.
        store = make_store_with_detections([[0, 1], [2, 3]])
        result = VIDFilter(store).match_one(EID(0), list(store.keys))
        assert len(result.chosen) == 2  # still produces choices
