"""End-to-end integration tests: dataset -> matcher -> accuracy, for
the ideal setting, every practical setting, and the parallel pipeline.
These are the smallest runs that exercise the paper's full claims."""

import pytest

from repro.core.matcher import EVMatcher, MatcherConfig
from repro.core.refining import RefiningConfig
from repro.core.set_splitting import SplitConfig
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.parallel.driver import ParallelEVMatcher


class TestIdealEndToEnd:
    def test_ss_accuracy_and_reuse(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(60, seed=0))
        ss = matcher.match(targets)
        edp = matcher.match_edp(targets)
        assert ss.score(ideal_dataset.truth).accuracy >= 0.85
        assert edp.score(ideal_dataset.truth).accuracy >= 0.85
        assert ss.num_selected < edp.num_selected

    def test_universal_matching(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        report = matcher.match_universal()
        score = report.score(ideal_dataset.truth)
        assert score.total == len(ideal_dataset.eids)
        assert score.accuracy >= 0.8

    def test_elastic_sizes_cost_less_per_eid(self, ideal_dataset):
        """Paper Sec. I: 'the larger the matching size is, the less
        time it costs per EID-VID pair' — via scenario reuse."""
        matcher = EVMatcher(ideal_dataset.store)
        small = matcher.match(list(ideal_dataset.sample_targets(10, seed=1)))
        large = matcher.match(list(ideal_dataset.sample_targets(80, seed=1)))
        per_eid_small = small.num_selected / 10
        per_eid_large = large.num_selected / 80
        assert per_eid_large < per_eid_small


class TestPracticalEndToEnd:
    def test_practical_with_refining(self, practical_dataset):
        matcher = EVMatcher(
            practical_dataset.store,
            MatcherConfig(refining=RefiningConfig(max_rounds=4)),
        )
        targets = list(practical_dataset.sample_targets(40, seed=2))
        report = matcher.match(targets)
        assert report.score(practical_dataset.truth).accuracy >= 0.6

    def test_missing_eid_population(self):
        dataset = build_dataset(
            ExperimentConfig(
                num_people=120,
                cells_per_side=3,
                duration=500.0,
                warmup=100.0,
                device_carry_rate=0.7,
                seed=7,
            )
        )
        matcher = EVMatcher(dataset.store)
        targets = list(dataset.sample_targets(30, seed=3))
        report = matcher.match(targets)
        # Device-less people add V-side distractors but matching holds.
        assert report.score(dataset.truth).accuracy >= 0.7

    def test_vid_missing_with_refining_beats_plain(self):
        dataset = build_dataset(
            ExperimentConfig(
                num_people=150,
                cells_per_side=3,
                duration=600.0,
                warmup=100.0,
                v_miss_rate=0.10,
                seed=8,
            )
        )
        targets = list(dataset.sample_targets(50, seed=4))
        plain = EVMatcher(
            dataset.store, MatcherConfig(split=SplitConfig(seed=5))
        ).match(targets)
        refined = EVMatcher(
            dataset.store,
            MatcherConfig(
                split=SplitConfig(seed=5), refining=RefiningConfig(max_rounds=4)
            ),
        ).match(targets)
        assert (
            refined.score(dataset.truth).accuracy
            >= plain.score(dataset.truth).accuracy
        )


class TestParallelEndToEnd:
    def test_parallel_pipeline_full_run(self, ideal_dataset):
        matcher = ParallelEVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(40, seed=5))
        report = matcher.match(targets)
        assert report.score(ideal_dataset.truth).accuracy >= 0.8
        assert report.times.v_time > 0
        assert report.split_stats.iterations > 0


class TestMultiDeviceEndToEnd:
    def test_both_devices_match_the_same_person(self):
        """The paper assumes one phone per person; with two, the
        devices are electronically inseparable (they always co-occur),
        yet VID filtering still identifies the right person for each —
        the candidate pair collapses to a single visual identity."""
        dataset = build_dataset(
            ExperimentConfig(
                num_people=150,
                cells_per_side=3,
                duration=600.0,
                warmup=100.0,
                multi_device_rate=0.3,
                seed=9,
            )
        )
        matcher = EVMatcher(dataset.store)
        multi = [p for p in dataset.population.people if p.extra_eids][:10]
        targets = [e for p in multi for e in p.all_eids]
        report = matcher.match(targets)
        assert report.score(dataset.truth).accuracy >= 0.8
        # Paired devices should usually agree on the person.
        agree = 0
        for person in multi:
            bests = [
                report.results[e].best.true_vid
                for e in person.all_eids
                if report.results[e].best is not None
            ]
            if len(set(bests)) == 1:
                agree += 1
        assert agree >= 7
