"""Tests for the LRU+TTL result cache and its invalidation rule."""

import pytest

from repro.service.cache import ResultCache
from repro.world.entities import EID


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_hit_and_miss(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_put_refreshes_value(self):
        cache = ResultCache(capacity=4)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0)

    def test_disabled_cache(self):
        cache = ResultCache(capacity=0)
        assert not cache.enabled
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a's recency
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evicted_lru == 1


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(9.0)
        assert cache.get("k") == 1
        clock.advance(2.0)
        assert cache.get("k") is None
        assert cache.stats.expired_ttl == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_s=None, clock=clock)
        cache.put("k", 1)
        clock.advance(10**6)
        assert cache.get("k") == 1


class TestInvalidation:
    def test_only_tagged_entries_dropped(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, eids=[EID(1), EID(2)])
        cache.put("b", 2, eids=[EID(3)])
        cache.put("c", 3, eids=[EID(4)])
        dropped = cache.invalidate_eids([EID(2), EID(4)])
        assert dropped == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") is None
        assert cache.stats.invalidated == 2

    def test_empty_invalidation_is_noop(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1, eids=[EID(1)])
        assert cache.invalidate_eids([]) == 0
        assert cache.get("a") == 1

    def test_untagged_entries_survive(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)  # no EID deps
        assert cache.invalidate_eids([EID(1)]) == 0
        assert cache.get("a") == 1

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None
