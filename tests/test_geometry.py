"""Unit and property tests for the planar geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.world.geometry import BoundingBox, Point, Vector, clamp

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        assert Point(1, 1).manhattan_distance_to(Point(4, -2)) == pytest.approx(6.0)

    def test_translate(self):
        assert Point(1, 2).translate(Vector(3, -1)) == Point(4, 1)

    def test_vector_to_roundtrip(self):
        a, b = Point(1, 5), Point(-3, 2)
        assert a.translate(a.vector_to(b)) == b

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestVector:
    def test_from_polar(self):
        v = Vector.from_polar(2.0, math.pi / 2)
        assert v.dx == pytest.approx(0.0, abs=1e-12)
        assert v.dy == pytest.approx(2.0)

    def test_magnitude_and_angle(self):
        v = Vector(3, 4)
        assert v.magnitude == pytest.approx(5.0)
        assert Vector(1, 1).angle == pytest.approx(math.pi / 4)

    def test_scaled(self):
        assert Vector(1, -2).scaled(3) == Vector(3, -6)

    def test_normalized(self):
        n = Vector(0, 5).normalized()
        assert n == Vector(0, 1)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError, match="zero-length"):
            Vector(0, 0).normalized()

    def test_arithmetic(self):
        assert Vector(1, 2) + Vector(3, 4) == Vector(4, 6)
        assert Vector(1, 2) - Vector(3, 4) == Vector(-2, -2)
        assert -Vector(1, -2) == Vector(-1, 2)

    @given(st.floats(min_value=0.01, max_value=1e3), st.floats(min_value=-math.pi, max_value=math.pi))
    def test_polar_roundtrip(self, magnitude, angle):
        v = Vector.from_polar(magnitude, angle)
        assert v.magnitude == pytest.approx(magnitude, rel=1e-9)


class TestBoundingBox:
    def test_square_constructor(self):
        box = BoundingBox.square(100.0)
        assert box.width == box.height == 100.0
        assert box.area == pytest.approx(10000.0)

    def test_square_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BoundingBox.square(0.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            BoundingBox(0, 0, -1, 1)

    def test_contains_edges_inclusive(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.01, 5))

    def test_clamp(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(-5, 5)) == Point(0, 5)
        assert box.clamp(Point(3, 12)) == Point(3, 10)
        assert box.clamp(Point(4, 4)) == Point(4, 4)

    def test_center(self):
        assert BoundingBox(0, 0, 10, 20).center == Point(5, 10)

    def test_distance_to_border_interior(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_border(Point(5, 5)) == pytest.approx(5.0)
        assert box.distance_to_border(Point(1, 5)) == pytest.approx(1.0)

    def test_distance_to_border_exterior_negative(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_border(Point(-2, 5)) < 0

    def test_shrunk_and_expanded(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.shrunk(2) == BoundingBox(2, 2, 8, 8)
        assert box.expanded(1) == BoundingBox(-1, -1, 11, 11)
        assert box.expanded(-1) == box.shrunk(1)

    def test_shrunk_too_much_raises(self):
        with pytest.raises(ValueError, match="margin"):
            BoundingBox(0, 0, 10, 10).shrunk(6)

    def test_intersects(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(5, 5, 15, 15))
        assert a.intersects(BoundingBox(10, 10, 20, 20))  # touching counts
        assert not a.intersects(BoundingBox(11, 11, 20, 20))

    def test_corners_order(self):
        corners = list(BoundingBox(0, 0, 2, 3).corners())
        assert corners == [Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3)]

    @given(points)
    def test_clamp_idempotent_and_contained(self, p):
        box = BoundingBox(-100, -100, 100, 100)
        clamped = box.clamp(p)
        assert box.contains(clamped)
        assert box.clamp(clamped) == clamped


class TestClamp:
    def test_basic(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 0)
