"""Tests for the mobility models: random waypoint, random walk,
Gauss-Markov — region containment, speed bounds, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mobility.base import MobilityState
from repro.mobility.gauss_markov import GaussMarkov, GaussMarkovConfig
from repro.mobility.random_walk import RandomWalk, RandomWalkConfig
from repro.mobility.random_waypoint import RandomWaypoint, RandomWaypointConfig
from repro.world.geometry import BoundingBox, Point, Vector

REGION = BoundingBox.square(500.0)


def roll(model, steps=200, dt=5.0, seed=0):
    rng = np.random.default_rng(seed)
    state = model.initial_state(rng)
    trace = [state]
    for _ in range(steps):
        state = model.step(state, dt, rng)
        trace.append(state)
    return trace


class TestRandomWaypointConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_speed": 0.0},
            {"min_speed": 2.0, "max_speed": 1.0},
            {"max_pause": -1.0},
            {"max_acceleration": 0.0},
            {"arrival_tolerance": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RandomWaypointConfig(**kwargs)


class TestRandomWaypoint:
    def test_stays_in_region(self):
        model = RandomWaypoint(REGION)
        for state in roll(model, steps=500, dt=7.0, seed=1):
            assert REGION.contains(state.position)

    def test_speed_bounded(self):
        cfg = RandomWaypointConfig(min_speed=0.5, max_speed=1.5, max_acceleration=None)
        model = RandomWaypoint(REGION, cfg)
        for state in roll(model, steps=300, dt=3.0, seed=2):
            assert state.speed <= cfg.max_speed + 1e-9

    def test_acceleration_limited_ramp(self):
        cfg = RandomWaypointConfig(max_acceleration=0.2, max_pause=0.0)
        model = RandomWaypoint(REGION, cfg)
        rng = np.random.default_rng(3)
        state = model.initial_state(rng)
        prev_speed = state.speed
        for _ in range(50):
            state = model.step(state, 1.0, rng)
            # Within one step, speed cannot change faster than a*dt
            # (arrivals reset to 0, so only check increases).
            if state.speed > prev_speed:
                assert state.speed - prev_speed <= cfg.max_acceleration + 1e-9
            prev_speed = state.speed

    def test_movement_actually_happens(self):
        model = RandomWaypoint(REGION)
        trace = roll(model, steps=100, dt=10.0, seed=4)
        assert trace[0].position.distance_to(trace[-1].position) > 1.0

    def test_deterministic_given_seed(self):
        model = RandomWaypoint(REGION)
        a = roll(model, steps=50, seed=5)
        b = roll(model, steps=50, seed=5)
        assert [s.position for s in a] == [s.position for s in b]

    def test_step_rejects_nonpositive_dt(self):
        model = RandomWaypoint(REGION)
        state = model.initial_state(np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.step(state, 0.0, np.random.default_rng(0))

    def test_pause_consumes_time(self):
        cfg = RandomWaypointConfig(max_pause=1000.0, arrival_tolerance=0.5)
        model = RandomWaypoint(REGION, cfg)
        rng = np.random.default_rng(6)
        state = model.initial_state(rng)
        # Force arrival: destination next to the current position.
        state.extra["destination"] = state.position.translate(Vector(0.1, 0.0))
        state = model.step(state, 1.0, rng)
        # Now likely pausing; during a pause, position must not change.
        if state.extra.get("pause_left", 0.0) > 5.0:
            pos = state.position
            state = model.step(state, 1.0, rng)
            assert state.position == pos

    def test_does_not_mutate_input_state(self):
        model = RandomWaypoint(REGION)
        rng = np.random.default_rng(7)
        state = model.initial_state(rng)
        snapshot = (state.position, dict(state.extra))
        model.step(state, 5.0, rng)
        assert (state.position, state.extra) == (snapshot[0], snapshot[1])

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_containment_property(self, seed):
        model = RandomWaypoint(REGION)
        for state in roll(model, steps=30, dt=12.0, seed=seed):
            assert REGION.contains(state.position)


class TestRandomWalk:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(min_speed=-1.0)
        with pytest.raises(ValueError):
            RandomWalkConfig(min_speed=2.0, max_speed=1.0)
        with pytest.raises(ValueError):
            RandomWalkConfig(epoch_duration=0.0)

    def test_stays_in_region_with_reflection(self):
        model = RandomWalk(REGION, RandomWalkConfig(max_speed=3.0))
        for state in roll(model, steps=400, dt=9.0, seed=8):
            assert REGION.contains(state.position)

    def test_speed_within_bounds(self):
        cfg = RandomWalkConfig(min_speed=0.5, max_speed=1.0)
        model = RandomWalk(REGION, cfg)
        for state in roll(model, steps=100, dt=4.0, seed=9):
            assert cfg.min_speed - 1e-9 <= state.speed <= cfg.max_speed + 1e-9

    def test_direction_persists_within_epoch(self):
        cfg = RandomWalkConfig(epoch_duration=100.0)
        model = RandomWalk(REGION, cfg)
        rng = np.random.default_rng(10)
        state = model.initial_state(rng)
        v0 = state.velocity
        state = model.step(state, 5.0, rng)
        # No boundary hit in 5 s from a uniform start (overwhelmingly):
        # velocity unchanged inside one epoch.
        if REGION.distance_to_border(state.position) > 20.0:
            assert state.velocity == v0

    def test_deterministic(self):
        model = RandomWalk(REGION)
        a = roll(model, steps=40, seed=11)
        b = roll(model, steps=40, seed=11)
        assert [s.position for s in a] == [s.position for s in b]


class TestGaussMarkov:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GaussMarkovConfig(alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovConfig(mean_speed=0.0)
        with pytest.raises(ValueError):
            GaussMarkovConfig(speed_sigma=-1.0)
        with pytest.raises(ValueError):
            GaussMarkovConfig(border_margin=-1.0)

    def test_stays_in_region(self):
        model = GaussMarkov(REGION)
        for state in roll(model, steps=400, dt=8.0, seed=12):
            assert REGION.contains(state.position)

    def test_speed_nonnegative(self):
        model = GaussMarkov(REGION)
        for state in roll(model, steps=200, dt=5.0, seed=13):
            assert state.speed >= 0.0

    def test_alpha_one_is_ballistic(self):
        cfg = GaussMarkovConfig(alpha=1.0, border_margin=0.0)
        model = GaussMarkov(REGION, cfg)
        rng = np.random.default_rng(14)
        state = model.initial_state(rng)
        s0, d0 = state.extra["speed"], state.extra["direction"]
        state = model.step(state, 1.0, rng)
        assert state.extra["speed"] == pytest.approx(s0)
        assert state.extra["direction"] == pytest.approx(d0)

    def test_border_steering_turns_inward(self):
        cfg = GaussMarkovConfig(alpha=0.0, speed_sigma=0.0, direction_sigma=0.0, border_margin=50.0)
        model = GaussMarkov(REGION, cfg)
        state = MobilityState(position=Point(1.0, 250.0))
        state.extra["speed"] = 1.0
        state.extra["direction"] = 3.14159  # heading straight at the wall
        new = model.step(state, 1.0, np.random.default_rng(0))
        # With alpha=0 and no noise, direction snaps to the steered mean:
        # toward the region center, i.e. roughly east (angle ~ 0).
        assert abs(new.extra["direction"]) < 0.5


class TestHotspotWaypoint:
    def test_invalid_config(self):
        from repro.mobility.hotspot import HotspotConfig

        with pytest.raises(ValueError):
            HotspotConfig(num_hotspots=0)
        with pytest.raises(ValueError):
            HotspotConfig(hotspot_bias=1.5)
        with pytest.raises(ValueError):
            HotspotConfig(spread=-1.0)

    def test_stays_in_region(self):
        from repro.mobility.hotspot import HotspotWaypoint

        model = HotspotWaypoint(REGION)
        for state in roll(model, steps=300, dt=8.0, seed=20):
            assert REGION.contains(state.position)

    def test_bias_concentrates_destinations(self):
        """With full bias and tight spread, long-run positions cluster
        near the hotspots far more than under plain random waypoint."""
        from repro.mobility.hotspot import HotspotConfig, HotspotWaypoint

        hot = HotspotConfig(num_hotspots=2, hotspot_bias=1.0, spread=10.0, seed=4)
        model = HotspotWaypoint(REGION, hotspots=hot)
        plain = RandomWaypoint(REGION)

        def near_hotspot_fraction(m):
            count = total = 0
            for seed in range(12):
                for state in roll(m, steps=60, dt=20.0, seed=seed)[20:]:
                    total += 1
                    if any(
                        state.position.distance_to(h) < 80.0
                        for h in model.hotspots
                    ):
                        count += 1
            return count / total

        assert near_hotspot_fraction(model) > near_hotspot_fraction(plain) + 0.2

    def test_zero_bias_behaves_like_waypoint(self):
        from repro.mobility.hotspot import HotspotConfig, HotspotWaypoint

        hot = HotspotConfig(hotspot_bias=0.0)
        model = HotspotWaypoint(REGION, hotspots=hot)
        # Not identical trajectories (extra RNG draw per trip), but the
        # model must remain well-behaved and region-bounded.
        for state in roll(model, steps=100, dt=10.0, seed=21):
            assert REGION.contains(state.position)

    def test_hotspots_deterministic(self):
        from repro.mobility.hotspot import HotspotConfig, HotspotWaypoint

        a = HotspotWaypoint(REGION, hotspots=HotspotConfig(seed=9))
        b = HotspotWaypoint(REGION, hotspots=HotspotConfig(seed=9))
        assert a.hotspots == b.hotspots

    def test_dataset_integration(self):
        from repro.datagen.config import ExperimentConfig
        from repro.datagen.dataset import build_dataset

        dataset = build_dataset(
            ExperimentConfig(
                num_people=30,
                cells_per_side=2,
                region_side=300.0,
                duration=200.0,
                warmup=0.0,
                mobility_model="hotspot",
                seed=22,
            )
        )
        assert len(dataset.store) > 0
