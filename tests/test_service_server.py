"""Tests for the query service: server, batcher, metrics, loadgen."""

import pytest

from repro.core.matcher import EVMatcher
from repro.sensing.scenarios import ScenarioStore
from repro.service import (
    LoadConfig,
    MatchRequest,
    MatchService,
    ServiceConfig,
    run_load,
)
from repro.service.loadgen import build_request_pool
from repro.service.metrics import LatencyHistogram, ServiceMetrics


@pytest.fixture()
def service(ideal_dataset):
    svc = MatchService.from_dataset(
        ideal_dataset, ServiceConfig(workers=2, queue_size=32)
    )
    with svc:
        yield svc


def split_store(dataset, fraction=0.7):
    """(standing store, arriving scenarios) split at a tick cutoff."""
    full = dataset.store
    ticks = list(full.ticks)
    cutoff = ticks[int(len(ticks) * fraction)]
    standing = ScenarioStore(
        [full.get(k) for k in full.keys if k.tick <= cutoff]
    )
    arriving = [full.get(k) for k in full.keys if k.tick > cutoff]
    return standing, arriving


class TestMatchEndpoint:
    def test_matches_equal_direct_matcher(self, ideal_dataset, service):
        targets = list(ideal_dataset.sample_targets(5, seed=1))
        response = service.match(targets)
        assert response.status == "ok"
        direct = EVMatcher(ideal_dataset.store).match(targets)
        expected = direct.predictions()
        assert set(response.matches) == set(targets)
        for eid in targets:
            assert response.matches[eid].prediction == expected[eid]

    def test_repeat_is_cached(self, ideal_dataset, service):
        targets = list(ideal_dataset.sample_targets(3, seed=2))
        first = service.match(targets)
        second = service.match(targets)
        assert not first.cached
        assert second.cached
        assert second.matches.keys() == first.matches.keys()
        for eid in targets:
            assert second.matches[eid] == first.matches[eid]

    def test_target_order_does_not_fork_cache_entries(
        self, ideal_dataset, service
    ):
        targets = list(ideal_dataset.sample_targets(3, seed=3))
        service.match(targets)
        response = service.match(list(reversed(targets)))
        assert response.cached

    def test_edp_algorithm(self, ideal_dataset, service):
        targets = list(ideal_dataset.sample_targets(3, seed=4))
        response = service.match(targets, algorithm="edp")
        assert response.status == "ok"
        assert set(response.matches) == set(targets)

    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError):
            MatchRequest(targets=())
        with pytest.raises(ValueError):
            MatchRequest(targets=(1,), algorithm="nope")


class TestDedupAndBatching:
    def test_identical_concurrent_requests_deduplicate(self, ideal_dataset):
        svc = MatchService.from_dataset(ideal_dataset, ServiceConfig(workers=1))
        targets = tuple(ideal_dataset.sample_targets(3, seed=5))
        request = MatchRequest(targets=targets)
        # Submit before start: the twins provably overlap in flight.
        futures = [svc.submit(request) for _ in range(4)]
        with svc:
            responses = [f.result(timeout=30.0) for f in futures]
        assert all(r.status == "ok" for r in responses)
        assert sum(1 for r in responses if r.deduplicated) == 3
        assert svc.metrics.snapshot()["match"]["deduplicated"] == 3

    def test_distinct_requests_batch_into_one_call(self, ideal_dataset):
        svc = MatchService.from_dataset(
            ideal_dataset, ServiceConfig(workers=1, max_batch=8)
        )
        eids = list(ideal_dataset.sample_targets(6, seed=6))
        requests = [MatchRequest(targets=(eid,)) for eid in eids]
        futures = [svc.submit(r) for r in requests]
        with svc:
            responses = [f.result(timeout=30.0) for f in futures]
        assert all(r.status == "ok" for r in responses)
        # All six queued before start, so one worker drains one batch.
        assert all(r.batched_with == 5 for r in responses)

    def test_batched_results_equal_individual_results(self, ideal_dataset):
        eids = list(ideal_dataset.sample_targets(4, seed=7))
        svc = MatchService.from_dataset(
            ideal_dataset, ServiceConfig(workers=1, max_batch=8)
        )
        futures = [svc.submit(MatchRequest(targets=(eid,))) for eid in eids]
        with svc:
            batched = {e: f.result(30.0).matches[e] for e, f in zip(eids, futures)}
        direct = EVMatcher(ideal_dataset.store).match(eids).predictions()
        for eid in eids:
            assert batched[eid].prediction == direct[eid]

    def test_coupled_matcher_disables_batching(self, ideal_dataset):
        from repro.core.matcher import MatcherConfig

        svc = MatchService.from_dataset(
            ideal_dataset,
            ServiceConfig(matcher=MatcherConfig(use_exclusion=True)),
        )
        assert svc.batcher.max_batch == 1


class TestAdmissionControl:
    def test_overflow_sheds(self, ideal_dataset):
        svc = MatchService.from_dataset(
            ideal_dataset, ServiceConfig(workers=1, queue_size=1, max_batch=1)
        )
        eids = list(ideal_dataset.sample_targets(5, seed=8))
        # Not started: the queue (size 1) fills after the first request.
        futures = [svc.submit(MatchRequest(targets=(eid,))) for eid in eids]
        shed_now = [f for f in futures if f.done()]
        assert len(shed_now) == len(eids) - 1
        assert all(f.result().status == "shed" for f in shed_now)
        with svc:
            responses = [f.result(timeout=30.0) for f in futures]
        assert sum(1 for r in responses if r.status == "ok") == 1
        assert svc.metrics.snapshot()["match"]["shed"] == len(eids) - 1

    def test_shed_resolves_attached_twins_too(self, ideal_dataset):
        svc = MatchService.from_dataset(
            ideal_dataset, ServiceConfig(workers=1, queue_size=1)
        )
        a, b = ideal_dataset.sample_targets(2, seed=9)
        svc.submit(MatchRequest(targets=(a,)))  # fills the queue
        twin = MatchRequest(targets=(b,))
        f1 = svc.submit(twin)  # claims a flight, then sheds on Full
        assert f1.done() and f1.result().status == "shed"
        # The key is free again: a later identical request is a fresh flight.
        f2 = svc.submit(twin)
        assert not f2.done() or f2.result().status == "shed"
        with svc:
            pass


class TestIngest:
    def test_ingest_invalidates_and_streams(self, ideal_dataset):
        standing, arriving = split_store(ideal_dataset)
        svc = MatchService(
            standing,
            grid=ideal_dataset.grid,
            universe=ideal_dataset.eids,
            config=ServiceConfig(workers=2),
        )
        targets = list(ideal_dataset.sample_targets(5, seed=10))
        with svc:
            svc.watch(targets)
            before = svc.match(targets[:2])
            assert not before.cached
            assert len(svc.cache) == 1
            emissions = 0
            for scenario in arriving:
                resp = svc.ingest_tick([scenario])
                assert resp.status == "ok"
                assert resp.ingested == 1
                emissions += len(resp.emissions)
            # The standing store grew...
            assert len(svc.store) == len(standing)
            # ...and the stale cached answer was dropped.
            after = svc.match(targets[:2])
            assert not after.cached
            assert svc.cache.stats.invalidated >= 1
            assert svc.watch_emitted == emissions
            assert svc.watch_pending == len(targets) - emissions

    def test_duplicate_ingest_errors(self, ideal_dataset):
        standing, arriving = split_store(ideal_dataset)
        svc = MatchService(
            standing, universe=ideal_dataset.eids, config=ServiceConfig()
        )
        with svc:
            first = arriving[0]
            assert svc.ingest_tick([first]).status == "ok"
            resp = svc.ingest_tick([first])
            assert resp.status == "error"
            assert "duplicate" in resp.error


class TestInvestigateAndStats:
    def test_investigate_from_shards(self, ideal_dataset, service):
        eid = ideal_dataset.sample_targets(1, seed=11)[0]
        response = service.investigate(eid)
        assert response.status == "ok"
        assert response.num_scenarios > 0
        assert response.presence
        assert 1 <= response.shards_touched <= service.shards.num_shards
        repeat = service.investigate(eid)
        assert repeat.cached
        assert repeat.presence == response.presence

    def test_stats_snapshot_structure(self, ideal_dataset, service):
        targets = list(ideal_dataset.sample_targets(2, seed=12))
        service.match(targets)
        snapshot = service.stats().snapshot
        assert "match" in snapshot and "service" in snapshot
        match_stats = snapshot["match"]
        for key in ("requests", "ok", "shed", "latency_p95_s"):
            assert key in match_stats
        gauges = snapshot["service"]
        assert gauges["num_shards"] == service.shards.num_shards
        assert gauges["store_scenarios"] == len(service.store)


class TestMetricsUnit:
    def test_percentiles(self):
        hist = LatencyHistogram()
        for v in range(1, 101):
            hist.record(float(v))
        assert hist.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert hist.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert hist.mean() == pytest.approx(50.5)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_reservoir_bounded(self):
        hist = LatencyHistogram(max_samples=10)
        for v in range(100):
            hist.record(float(v))
        assert hist.count == 100
        # Window percentiles reflect the most recent samples only.
        assert hist.percentile(0) >= 90.0

    def test_observe_counters(self):
        metrics = ServiceMetrics()
        metrics.observe("match", "ok", 0.01, cached=True)
        metrics.observe("match", "shed", 0.0)
        metrics.observe("match", "error", 0.02)
        snap = metrics.snapshot()["match"]
        assert snap["requests"] == 3
        assert snap["ok"] == 1
        assert snap["shed"] == 1
        assert snap["errors"] == 1
        assert snap["cache_hits"] == 1


class TestLoadgen:
    def test_pool_is_deterministic(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(12, seed=13))
        config = LoadConfig(pool_size=6, targets_per_request=3, seed=5)
        assert build_request_pool(targets, config) == build_request_pool(
            targets, config
        )

    def test_closed_loop_accounting(self, ideal_dataset, service):
        targets = list(ideal_dataset.sample_targets(10, seed=14))
        config = LoadConfig(
            num_clients=3, requests_per_client=5, pool_size=3, seed=6
        )
        report = run_load(service, targets, config)
        assert report.issued == 15
        assert report.ok + report.shed + report.errors == report.issued
        assert report.errors == 0
        assert len(report.latencies_s) == report.issued
        assert report.achieved_qps > 0
