"""Tests for the parallel pipeline (Algorithm 3, V-stage jobs, EDP job,
driver) including serial-vs-parallel consistency."""

import pytest

from repro.core.edp import EDPConfig, EDPMatcher
from repro.core.matcher import EVMatcher, MatcherConfig
from repro.core.set_splitting import SetSplitter, SplitConfig
from repro.core.vid_filtering import FilterConfig, VIDFilter
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.engine import MapReduceEngine
from repro.parallel.driver import ParallelEVMatcher
from repro.parallel.edp_job import ParallelEDP
from repro.parallel.filter_job import ParallelVIDFilter
from repro.parallel.split_job import ParallelSetSplitter


@pytest.fixture
def engine():
    return MapReduceEngine()


class TestParallelSetSplitter:
    def test_distinguishes_targets(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(20, seed=1))
        splitter = ParallelSetSplitter(
            ideal_dataset.store, engine, SplitConfig(seed=7)
        )
        result, stats = splitter.run(targets)
        assert len(result.unresolved) <= 1
        assert stats.iterations > 0
        assert stats.job_metrics, "iterations must run MapReduce jobs"

    def test_evidence_contains_target(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(10, seed=2))
        splitter = ParallelSetSplitter(
            ideal_dataset.store, engine, SplitConfig(seed=7)
        )
        result, _stats = splitter.run(targets)
        for target in targets:
            for key in result.evidence[target]:
                assert target in ideal_dataset.store.e_scenario(key).inclusive

    def test_candidates_are_positive_intersections(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(8, seed=3))
        splitter = ParallelSetSplitter(
            ideal_dataset.store, engine, SplitConfig(seed=7)
        )
        result, _stats = splitter.run(targets)
        universe = set()
        for scenario in ideal_dataset.store.e_scenarios():
            universe |= scenario.eids
        for target in targets:
            expected = set(universe)
            for key in result.evidence[target]:
                e = ideal_dataset.store.e_scenario(key)
                expected &= set(e.inclusive | e.vague)
            assert result.candidates[target] == frozenset(expected)

    def test_simulated_time_accumulates(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(10, seed=4))
        splitter = ParallelSetSplitter(
            ideal_dataset.store, engine, SplitConfig(seed=7)
        )
        _result, stats = splitter.run(targets)
        assert stats.simulated_time > 0
        assert stats.total_pairs_shuffled > 0

    def test_errors(self, ideal_dataset, engine):
        splitter = ParallelSetSplitter(ideal_dataset.store, engine)
        with pytest.raises(ValueError):
            splitter.run([])
        from repro.world.entities import EID

        with pytest.raises(ValueError, match="not in universe"):
            splitter.run([EID(10**6)])


class TestParallelVIDFilter:
    def test_matches_serial_filter_exactly(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(12, seed=5))
        split = SetSplitter(ideal_dataset.store, SplitConfig(seed=7)).run(targets)
        serial = VIDFilter(ideal_dataset.store, FilterConfig()).match(split.evidence)
        par_filter = ParallelVIDFilter(ideal_dataset.store, engine, FilterConfig())
        parallel, stats = par_filter.match(split.evidence)
        assert set(parallel.keys()) == set(serial.keys())
        for eid in serial:
            assert serial[eid].scenario_keys == parallel[eid].scenario_keys
            assert [d.detection_id for d in serial[eid].chosen] == [
                d.detection_id for d in parallel[eid].chosen
            ]
            assert serial[eid].agreement == pytest.approx(parallel[eid].agreement)

    def test_extraction_deduplicated(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(12, seed=6))
        split = SetSplitter(ideal_dataset.store, SplitConfig(seed=7)).run(targets)
        par_filter = ParallelVIDFilter(ideal_dataset.store, engine)
        _results, stats = par_filter.match(split.evidence)
        distinct = {k for keys in split.evidence.values() for k in keys}
        assert stats.scenarios_extracted == len(
            {k for k in distinct if len(ideal_dataset.store.v_scenario(k)) > 0}
        )

    def test_empty_evidence(self, ideal_dataset, engine):
        par_filter = ParallelVIDFilter(ideal_dataset.store, engine)
        results, stats = par_filter.match({})
        assert results == {}
        assert stats.simulated_time == 0.0


class TestParallelEDP:
    def test_matches_serial_edp_exactly(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(10, seed=7))
        serial = EDPMatcher(ideal_dataset.store, EDPConfig(seed=9)).run(targets)
        par = ParallelEDP(ideal_dataset.store, engine, EDPConfig(seed=9))
        parallel, stats = par.run(targets)
        assert serial.evidence == parallel.evidence
        assert serial.candidates == parallel.candidates
        assert stats.e_metrics is not None
        assert stats.e_metrics.map_tasks == len(targets)

    def test_one_mapper_per_eid(self, ideal_dataset, engine):
        targets = list(ideal_dataset.sample_targets(7, seed=8))
        par = ParallelEDP(ideal_dataset.store, engine, EDPConfig(seed=9))
        _result, stats = par.run(targets)
        assert stats.e_metrics.map_tasks == 7


class TestParallelDriver:
    def test_match_report_shape(self, ideal_dataset):
        matcher = ParallelEVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(15, seed=9))
        report = matcher.match(targets)
        assert report.algorithm == "ss"
        assert set(report.results.keys()) == set(targets)
        assert report.times.v_time > report.times.e_time
        assert report.score(ideal_dataset.truth).accuracy >= 0.7

    def test_edp_report(self, ideal_dataset):
        matcher = ParallelEVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(15, seed=10))
        report = matcher.match_edp(targets)
        assert report.algorithm == "edp"
        assert report.score(ideal_dataset.truth).accuracy >= 0.7

    def test_ss_beats_edp_on_time(self, ideal_dataset):
        # A small cluster, so the extraction stage needs several waves:
        # on an over-provisioned cluster (more slots than selected
        # scenarios) both algorithms finish in one wave and the reuse
        # advantage disappears — a real small-scale crossover.
        matcher = ParallelEVMatcher(
            ideal_dataset.store, cluster=ClusterConfig(num_nodes=2, cores_per_node=2)
        )
        targets = list(ideal_dataset.sample_targets(30, seed=11))
        ss = matcher.match(targets)
        edp = matcher.match_edp(targets)
        assert ss.num_selected < edp.num_selected
        assert ss.times.total < edp.times.total

    def test_bigger_cluster_is_faster(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(20, seed=12))
        small = ParallelEVMatcher(
            ideal_dataset.store, cluster=ClusterConfig(num_nodes=1, cores_per_node=1)
        ).match(targets)
        large = ParallelEVMatcher(
            ideal_dataset.store, cluster=ClusterConfig(num_nodes=14, cores_per_node=4)
        ).match(targets)
        assert large.times.total < small.times.total

    def test_threads_executor_consistent(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(10, seed=13))
        serial = ParallelEVMatcher(
            ideal_dataset.store, split_config=SplitConfig(seed=7)
        ).match(targets)
        threaded = ParallelEVMatcher(
            ideal_dataset.store, split_config=SplitConfig(seed=7), executor="threads"
        ).match(targets)
        assert serial.predictions_equal(threaded) if hasattr(serial, "predictions_equal") else (
            {e: [d.detection_id for d in r.chosen] for e, r in serial.results.items()}
            == {e: [d.detection_id for d in r.chosen] for e, r in threaded.results.items()}
        )

    def test_serial_vs_parallel_same_accuracy_band(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(30, seed=14))
        serial = EVMatcher(
            ideal_dataset.store, MatcherConfig(split=SplitConfig(seed=7))
        ).match(targets)
        parallel = ParallelEVMatcher(
            ideal_dataset.store, split_config=SplitConfig(seed=7)
        ).match(targets)
        s = serial.score(ideal_dataset.truth).accuracy
        p = parallel.score(ideal_dataset.truth).accuracy
        assert abs(s - p) <= 0.15


class TestFaultTolerantPipeline:
    def test_matching_survives_injected_failures(self, ideal_dataset):
        """The full distributed pipeline under a 20% task-kill rate
        must produce the same matches as a quiet cluster (retry makes
        faults invisible to results; only the schedule stretches)."""
        from repro.mapreduce.failures import FailurePolicy

        targets = list(ideal_dataset.sample_targets(20, seed=15))
        quiet = ParallelEVMatcher(
            ideal_dataset.store, split_config=SplitConfig(seed=7)
        ).match(targets)
        flaky = ParallelEVMatcher(
            ideal_dataset.store,
            split_config=SplitConfig(seed=7),
            failure_policy=FailurePolicy(failure_rate=0.2, max_attempts=8, seed=3),
        ).match(targets)
        assert {
            e: [d.detection_id for d in r.chosen] for e, r in quiet.results.items()
        } == {
            e: [d.detection_id for d in r.chosen] for e, r in flaky.results.items()
        }
        # Retried attempts occupied slots: the flaky schedule is no faster.
        assert flaky.times.total >= quiet.times.total
