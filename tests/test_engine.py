"""Tests for the MapReduce engine: map-only and shuffled jobs,
combiners, retry under injected failures, cost scheduling."""

import pytest

from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.engine import JobFailedError, MapReduceEngine
from repro.mapreduce.failures import FailurePolicy
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import RangePartitioner


def word_count_job(name="wc"):
    return MapReduceJob(
        name=name,
        mapper=lambda line: ((word, 1) for word in line.split()),
        reducer=lambda word, counts: ((word, sum(counts)),),
        num_reducers=4,
    )


@pytest.fixture
def engine():
    return MapReduceEngine(
        cluster=SimulatedCluster(ClusterConfig(num_nodes=2, cores_per_node=2))
    )


class TestEngineBasics:
    def test_word_count(self, engine):
        engine.dfs.write_records(
            "lines", ["a b a", "b c", "a"], num_partitions=2
        )
        handle, metrics = engine.run(word_count_job(), "lines", "counts")
        counts = dict(engine.dfs.read_all("counts"))
        assert counts == {"a": 3, "b": 2, "c": 1}
        assert metrics.map_tasks == 2
        assert metrics.reduce_tasks == 4
        assert metrics.records_in == 3
        assert metrics.records_out == 3

    def test_map_only_job_preserves_partitioning(self, engine):
        engine.dfs.write("input", [[1, 2], [3]])
        job = MapReduceJob(name="double", mapper=lambda x: (x * 2,))
        handle, metrics = engine.run(job, "input", "output")
        assert handle.num_partitions == 2
        assert engine.dfs.read_partition("output", 0) == (2, 4)
        assert engine.dfs.read_partition("output", 1) == (6,)
        assert metrics.reduce_tasks == 0

    def test_combiner_reduces_shuffle_volume(self, engine):
        engine.dfs.write_records("lines", ["a a a a"] * 4, num_partitions=2)
        plain = word_count_job("plain")
        combined = MapReduceJob(
            name="combined",
            mapper=plain.mapper,
            reducer=plain.reducer,
            combiner=lambda word, counts: ((word, sum(counts)),),
            num_reducers=4,
        )
        _, metrics_plain = engine.run(plain, "lines", "out-plain")
        _, metrics_combined = engine.run(combined, "lines", "out-combined")
        assert dict(engine.dfs.read_all("out-plain")) == dict(
            engine.dfs.read_all("out-combined")
        )
        assert metrics_combined.pairs_shuffled < metrics_plain.pairs_shuffled

    def test_custom_partitioner_and_key_order(self, engine):
        engine.dfs.write_records("nums", list(range(20)), num_partitions=3)
        job = MapReduceJob(
            name="sort",
            mapper=lambda x: ((x, x),),
            reducer=lambda k, vs: iter(vs),
            partitioner=RangePartitioner([6, 13]),
            key_order=lambda k: k,
        )
        handle, metrics = engine.run(job, "nums", "sorted")
        assert metrics.reduce_tasks == 3
        flat = engine.dfs.read_all("sorted")
        assert flat == sorted(flat)

    def test_wall_time_recorded(self, engine):
        engine.dfs.write_records("xs", [1, 2, 3], num_partitions=1)
        _, metrics = engine.run(
            MapReduceJob(name="noop", mapper=lambda x: (x,)), "xs", "ys"
        )
        assert metrics.wall_time > 0

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            MapReduceEngine(executor="processes")
        with pytest.raises(ValueError):
            MapReduceEngine(max_workers=0)


class TestCostScheduling:
    def test_map_costs_drive_simulated_time(self):
        engine = MapReduceEngine(
            cluster=SimulatedCluster(
                ClusterConfig(num_nodes=1, cores_per_node=1, task_overhead=0.0)
            )
        )
        engine.dfs.write_records("xs", [1] * 10, num_partitions=2)
        job = MapReduceJob(
            name="costly",
            mapper=lambda x: ((x, x),),
            reducer=lambda k, vs: (k,),
            map_cost=lambda x: 2.0,
            reduce_cost=lambda k, vs: 1.0,
        )
        _, metrics = engine.run(job, "xs", "ys")
        assert metrics.map_stats.serial_cost == pytest.approx(20.0)
        # One key ("1") -> reduce serial cost 1.0.
        assert metrics.reduce_stats.serial_cost == pytest.approx(1.0)
        assert metrics.simulated_time == pytest.approx(21.0)

    def test_more_slots_shrink_makespan(self):
        def run(slots):
            engine = MapReduceEngine(
                cluster=SimulatedCluster(
                    ClusterConfig(num_nodes=slots, cores_per_node=1, task_overhead=0.0)
                )
            )
            engine.dfs.write_records("xs", list(range(8)), num_partitions=8)
            job = MapReduceJob(
                name="par", mapper=lambda x: (x,), map_cost=lambda x: 1.0
            )
            _, metrics = engine.run(job, "xs", f"ys{slots}")
            return metrics.map_stats.makespan

        assert run(8) == pytest.approx(run(1) / 8)


class TestFailureRecovery:
    def test_retries_recover(self):
        engine = MapReduceEngine(
            failure_policy=FailurePolicy(failure_rate=0.4, max_attempts=10, seed=1)
        )
        engine.dfs.write_records("lines", ["a b"] * 6, num_partitions=6)
        handle, metrics = engine.run(word_count_job(), "lines", "counts")
        assert dict(engine.dfs.read_all("counts")) == {"a": 6, "b": 6}
        assert metrics.retries > 0
        assert metrics.map_attempts > metrics.map_tasks

    def test_job_fails_after_max_attempts(self):
        engine = MapReduceEngine(
            failure_policy=FailurePolicy(
                failure_rate=0.97, max_attempts=2, seed=2
            )
        )
        engine.dfs.write_records("xs", list(range(20)), num_partitions=20)
        with pytest.raises(JobFailedError):
            engine.run(
                MapReduceJob(name="doomed", mapper=lambda x: (x,)), "xs", "ys"
            )

    def test_failed_attempts_charged_to_schedule(self):
        quiet = MapReduceEngine(
            cluster=SimulatedCluster(
                ClusterConfig(num_nodes=1, cores_per_node=1, task_overhead=0.0)
            )
        )
        flaky = MapReduceEngine(
            cluster=SimulatedCluster(
                ClusterConfig(num_nodes=1, cores_per_node=1, task_overhead=0.0)
            ),
            failure_policy=FailurePolicy(failure_rate=0.5, max_attempts=20, seed=3),
        )
        for engine, out in ((quiet, "q"), (flaky, "f")):
            engine.dfs.write_records("xs", list(range(10)), num_partitions=10)
            job = MapReduceJob(name="j", mapper=lambda x: (x,), map_cost=lambda x: 1.0)
            _, metrics = engine.run(job, "xs", out)
            if out == "q":
                quiet_time = metrics.map_stats.makespan
            else:
                flaky_time = metrics.map_stats.makespan
                assert metrics.retries > 0
        assert flaky_time > quiet_time

    def test_threads_executor_matches_serial(self):
        def run(executor):
            engine = MapReduceEngine(executor=executor)
            engine.dfs.write_records("lines", ["x y z", "x"] * 5, num_partitions=4)
            engine.run(word_count_job(), "lines", "counts")
            return dict(engine.dfs.read_all("counts"))

        assert run("serial") == run("threads")
