"""Tests for the byte-budgeted LRU (repro.core.caches) and its use by
the V stage's bounded caches."""

import numpy as np
import pytest

from repro.core.caches import ByteBudgetLRU


def arr(n):
    return np.zeros(n, dtype=np.uint8)  # n bytes exactly


def make(budget):
    return ByteBudgetLRU(budget, lambda a: a.nbytes)


class TestByteBudgetLRU:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            make(0)
        with pytest.raises(ValueError):
            make(-1)

    def test_unbounded_never_evicts(self):
        cache = make(None)
        for i in range(100):
            cache.put(i, arr(1000))
        assert len(cache) == 100
        assert cache.stats.evictions == 0
        assert cache.current_bytes == 100_000

    def test_hit_miss_accounting(self):
        cache = make(100)
        assert cache.get("k") is None
        cache.put("k", arr(10))
        assert cache.get("k") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate() == 0.5

    def test_evicts_least_recently_used_first(self):
        cache = make(30)
        cache.put("a", arr(10))
        cache.put("b", arr(10))
        cache.put("c", arr(10))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("d", arr(10))
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_replacement_updates_byte_accounting(self):
        cache = make(100)
        cache.put("k", arr(40))
        cache.put("k", arr(10))
        assert cache.current_bytes == 10
        assert len(cache) == 1

    def test_oversize_value_rejected_not_admitted(self):
        cache = make(50)
        cache.put("small", arr(20))
        cache.put("huge", arr(51))
        assert "huge" not in cache
        assert "small" in cache  # nothing was evicted for the reject
        assert cache.stats.rejected_oversize == 1

    def test_peak_bytes_never_exceeds_budget(self):
        rng = np.random.default_rng(0)
        cache = make(256)
        for i in range(200):
            cache.put(i, arr(int(rng.integers(1, 300))))
        assert cache.peak_bytes <= 256
        assert cache.current_bytes <= 256

    def test_clear_resets_bytes(self):
        cache = make(100)
        cache.put("k", arr(10))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0


class TestBoundedVIDFilter:
    def test_filter_config_rejects_bad_budgets(self):
        from repro.core.vid_filtering import FilterConfig

        with pytest.raises(ValueError):
            FilterConfig(feature_cache_bytes=0)
        with pytest.raises(ValueError):
            FilterConfig(membership_cache_bytes=-5)

    def test_bounded_filter_matches_unbounded(self, practical_dataset):
        """Eviction may cost recomputes, never results."""
        from repro.core.matcher import EVMatcher, MatcherConfig
        from repro.core.vid_filtering import FilterConfig

        targets = list(practical_dataset.sample_targets(12, seed=3))
        baseline = EVMatcher(practical_dataset.store).match(targets)
        bounded_cfg = MatcherConfig(
            filter=FilterConfig(
                feature_cache_bytes=4096, membership_cache_bytes=2048
            )
        )
        bounded = EVMatcher(practical_dataset.store, bounded_cfg).match(targets)
        for t in targets:
            assert bounded.results[t].best == baseline.results[t].best
            assert (
                bounded.results[t].scenario_keys
                == baseline.results[t].scenario_keys
            )

    def test_cache_report_shape(self, practical_dataset):
        from repro.core.vid_filtering import FilterConfig, VIDFilter

        vid = VIDFilter(
            practical_dataset.store,
            FilterConfig(feature_cache_bytes=4096),
        )
        report = vid.cache_report()
        assert set(report) == {"features", "membership"}
        for stats in report.values():
            assert {"hits", "misses", "hit_rate", "evictions"} <= set(stats)
