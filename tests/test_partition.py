"""Tests for EIDPartition and SeparationTracker, including the
cross-representation property: on vague-free inputs the tracker's
connected components equal the partition's sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import EIDPartition, SeparationTracker
from repro.world.entities import EID


def eids(*indices):
    return frozenset(EID(i) for i in indices)


class TestEIDPartition:
    def test_starts_as_one_set(self):
        p = EIDPartition(eids(0, 1, 2))
        assert p.num_sets == 1
        assert p.members(0) == eids(0, 1, 2)

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            EIDPartition([])

    def test_split_by_divides(self):
        p = EIDPartition(eids(0, 1, 2, 3))
        splits = p.split_by(eids(0, 1))
        assert len(splits) == 1
        assert p.num_sets == 2
        assert p.as_frozensets() == frozenset({eids(0, 1), eids(2, 3)})

    def test_split_ineffective_when_superset(self):
        p = EIDPartition(eids(0, 1))
        assert p.split_by(eids(0, 1, 5)) == []
        assert p.num_sets == 1

    def test_split_ineffective_when_disjoint(self):
        p = EIDPartition(eids(0, 1))
        assert p.split_by(eids(7, 8)) == []

    def test_iterative_splitting_to_singletons(self):
        p = EIDPartition(eids(0, 1, 2, 3))
        p.split_by(eids(0, 1))
        p.split_by(eids(0, 2))
        assert p.num_sets == 4
        assert all(p.is_distinguished(EID(i)) for i in range(4))

    def test_set_of_tracks_membership(self):
        p = EIDPartition(eids(0, 1, 2))
        p.split_by(eids(0,))
        assert p.set_of(EID(0)) != p.set_of(EID(1))
        assert p.set_of(EID(1)) == p.set_of(EID(2))

    def test_unknown_eid_raises(self):
        p = EIDPartition(eids(0))
        with pytest.raises(KeyError):
            p.set_of(EID(5))
        with pytest.raises(KeyError):
            p.members(99)

    def test_split_returns_fresh_ids(self):
        p = EIDPartition(eids(0, 1, 2, 3))
        (old, in_id, out_id), = p.split_by(eids(0, 1))
        assert old == 0
        assert p.members(in_id) == eids(0, 1)
        assert p.members(out_id) == eids(2, 3)
        with pytest.raises(KeyError):
            p.members(old)

    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=19)),
            min_size=0,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_always_a_partition(self, scenario_sets):
        """Invariant: after any split sequence, the sets are disjoint,
        non-empty and cover the universe."""
        universe = eids(*range(20))
        p = EIDPartition(universe)
        for s in scenario_sets:
            p.split_by(eids(*s))
        all_sets = list(p)
        union = frozenset().union(*all_sets) if all_sets else frozenset()
        assert union == universe
        assert sum(len(s) for s in all_sets) == len(universe)
        assert all(len(s) > 0 for s in all_sets)

    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=14)),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_tracker_on_vague_free_input(self, scenario_sets):
        """EIDPartition sets == SeparationTracker components when every
        scenario separates its members from everything else."""
        universe = sorted(eids(*range(15)))
        p = EIDPartition(universe)
        t = SeparationTracker(universe)
        for s in scenario_sets:
            inside = eids(*s) & frozenset(universe)
            outside = frozenset(universe) - inside
            p.split_by(inside)
            t.separate(inside, outside)
        assert p.as_frozensets() == t.groups()


class TestSeparationTracker:
    def test_initially_all_confusable(self):
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        assert t.confusable(EID(0), EID(1))
        assert t.confusion_count(EID(0)) == 2
        assert t.num_distinguished() == 0

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            SeparationTracker([])

    def test_separate_clears_pairs_symmetrically(self):
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        t.separate([EID(0)], [EID(1), EID(2)])
        assert not t.confusable(EID(0), EID(1))
        assert not t.confusable(EID(1), EID(0))
        assert t.confusable(EID(1), EID(2))
        assert t.is_distinguished(EID(0))

    def test_separate_reports_progress(self):
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        in_prog, out_prog = t.separate([EID(0)], [EID(1)])
        assert in_prog == eids(0) and out_prog == eids(1)
        # Repeating the same separation makes no progress.
        in_prog, out_prog = t.separate([EID(0)], [EID(1)])
        assert in_prog == frozenset() and out_prog == frozenset()

    def test_overlapping_sides_rejected(self):
        t = SeparationTracker(sorted(eids(0, 1)))
        with pytest.raises(ValueError, match="both sides"):
            t.separate([EID(0)], [EID(0), EID(1)])

    def test_empty_side_is_noop(self):
        t = SeparationTracker(sorted(eids(0, 1)))
        assert t.separate([], [EID(0)]) == (frozenset(), frozenset())
        assert t.confusable(EID(0), EID(1))

    def test_confusion_set(self):
        t = SeparationTracker(sorted(eids(0, 1, 2, 3)))
        t.separate([EID(0), EID(1)], [EID(2), EID(3)])
        assert t.confusion_set(EID(0)) == eids(1)
        assert t.confusion_set(EID(2)) == eids(3)

    def test_all_distinguished(self):
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        t.separate([EID(0)], [EID(1), EID(2)])
        t.separate([EID(1)], [EID(2)])
        assert t.all_distinguished([EID(0), EID(1), EID(2)])
        assert t.num_distinguished() == 3

    def test_unknown_eid_raises(self):
        t = SeparationTracker(sorted(eids(0)))
        with pytest.raises(KeyError):
            t.confusable(EID(0), EID(9))

    def test_groups_on_fresh_tracker(self):
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        assert t.groups() == frozenset({eids(0, 1, 2)})

    def test_vague_eids_never_separated(self):
        """The practical rule: an EID left out of both sides (vague)
        stays confusable with everyone."""
        t = SeparationTracker(sorted(eids(0, 1, 2)))
        # EID 2 is vague in this scenario: excluded from both sides.
        t.separate([EID(0)], [EID(1)])
        assert t.confusable(EID(2), EID(0))
        assert t.confusable(EID(2), EID(1))
