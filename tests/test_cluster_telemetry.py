"""Unit tests for the cluster observability plane.

Everything here runs in one process with fakes — the companion
integration file (``test_cluster_observability.py``) proves the same
flows over real worker processes.  Covered:

* trace-envelope round-trips through both wire protocols;
* federation re-basing across worker restarts, and the invariant that
  the federated counter equals the sum of the per-worker counters
  (property-based);
* trace-id preservation through ``first``-mode failover and quorum
  fan-out (fake supervisor);
* event shipping loss accounting (ring falloff, per-collect cap) and
  the ``ev_obs_events_dropped_total`` ring-overwrite counter;
* the ``# HELP``/``# TYPE`` dedup regression in
  ``MatchService.metrics_text()``.
"""

import re
import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.protocol import (
    decode_line,
    encode_line,
    recv_frame,
    send_frame,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import WorkerError
from repro.cluster.telemetry import (
    TRACES_EVICTED_METRIC,
    ClusterTelemetry,
    MetricsFederation,
    TraceCollector,
)
from repro.obs.events import (
    EVENTS_DROPPED_METRIC,
    SHIP_LAG_METRIC,
    EventLog,
    EventShipper,
    set_event_log,
)
from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
    merge_expositions,
    set_registry,
)
from repro.obs.tracing import (
    TRACE_KEY,
    TraceContext,
    Tracer,
    extract_trace,
    inject_trace,
    new_trace_id,
    set_tracer,
)


@pytest.fixture()
def fresh_obs():
    """Isolated registry + tracer + event log for one test."""
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    tracer = Tracer()
    previous_tracer = set_tracer(tracer)
    log = EventLog()
    previous_log = set_event_log(log)
    yield registry, tracer, log
    set_registry(previous_registry)
    set_tracer(previous_tracer)
    set_event_log(previous_log)


class TestTraceEnvelope:
    def test_round_trip_over_frames(self):
        ctx = TraceContext(new_trace_id(), parent_span_id=42)
        message = {"verb": "match", "targets": [1, 2]}
        inject_trace(message, ctx)
        parent, child = socket.socketpair()
        try:
            send_frame(parent, message)
            received = recv_frame(child)
        finally:
            parent.close()
            child.close()
        assert extract_trace(received) == ctx
        assert received["verb"] == "match"

    def test_round_trip_over_ndjson(self):
        ctx = TraceContext(new_trace_id())
        message = {"verb": "investigate", "eid": 7}
        inject_trace(message, ctx)
        assert extract_trace(decode_line(encode_line(message))) == ctx

    def test_malformed_envelope_is_ignored(self):
        assert extract_trace({"verb": "match"}) is None
        assert extract_trace({TRACE_KEY: "not a dict"}) is None
        assert extract_trace({TRACE_KEY: {"parent_span_id": 3}}) is None

    def test_codec_decoders_tolerate_the_envelope(self):
        from repro.cluster.codec import request_from_wire

        message = {"verb": "match", "targets": [1], "algorithm": "ss"}
        inject_trace(message, TraceContext(new_trace_id(), 5))
        request = request_from_wire(message)
        assert [eid.index for eid in request.targets] == [1]


class TestMetricsFederation:
    def test_worker_label_and_single_headers(self):
        fed = MetricsFederation()
        for wid, value in (("w0", 3.0), ("w1", 4.0)):
            registry = MetricsRegistry()
            registry.counter("ev_x_total", "x").inc(value, verb="match")
            fed.update(wid, generation=1, state=registry.export_state())
        text = fed.render()
        assert text.count("# HELP ev_x_total") == 1
        assert text.count("# TYPE ev_x_total") == 1
        assert 'worker="w0"' in text and 'worker="w1"' in text
        assert fed.counter_value("ev_x_total") == 7.0

    def test_restart_rebases_counters(self):
        fed = MetricsFederation()
        registry = MetricsRegistry()
        registry.counter("ev_x_total", "x").inc(5)
        fed.update("w0", generation=100, state=registry.export_state())
        # Restart: new pid, counter restarts from zero then reaches 2.
        restarted = MetricsRegistry()
        restarted.counter("ev_x_total", "x").inc(2)
        fed.update("w0", generation=200, state=restarted.export_state())
        assert fed.counter_value("ev_x_total") == 7.0
        # The next beat of the same generation is cumulative, not added.
        restarted.counter("ev_x_total", "x").inc(1)
        fed.update("w0", generation=200, state=restarted.export_state())
        assert fed.counter_value("ev_x_total") == 8.0

    def test_restart_rebases_histograms_and_replaces_gauges(self):
        fed = MetricsFederation()
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "h").observe(0.01)
        registry.gauge("g", "g").set(5.0)
        fed.update("w0", generation=1, state=registry.export_state())
        restarted = MetricsRegistry()
        restarted.histogram("h_seconds", "h").observe(0.02)
        restarted.gauge("g", "g").set(2.0)
        fed.update("w0", generation=2, state=restarted.export_state())
        text = fed.render()
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("h_seconds_count")
        )
        assert count_line.endswith(" 2")  # both generations' observations
        assert fed.counter_value("g") == 2.0  # gauge: current only

    @settings(max_examples=50, deadline=None)
    @given(
        per_worker=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_federated_counter_is_sum_of_workers(self, per_worker):
        """Across arbitrary restart histories, the federated total is
        the sum of every increment any worker generation ever made."""
        fed = MetricsFederation()
        expected_total = 0.0
        for index, generations in enumerate(per_worker):
            wid = f"w{index}"
            expected_worker = 0.0
            for generation, value in enumerate(generations):
                registry = MetricsRegistry()
                registry.counter("ev_total", "t").inc(value)
                fed.update(wid, generation, registry.export_state())
                expected_worker += value
            assert fed.counter_value("ev_total", wid) == pytest.approx(
                expected_worker
            )
            expected_total += expected_worker
        assert fed.counter_value("ev_total") == pytest.approx(expected_total)
        assert fed.counter_value("ev_total") == pytest.approx(
            sum(fed.counter_value("ev_total", wid) for wid in fed.workers())
        )


class TestTraceCollector:
    @staticmethod
    def record(span_id, trace_id, pid=1, parent=None, ts=1000.0):
        return {
            "name": "worker.request",
            "span_id": span_id,
            "parent_span_id": parent,
            "trace_id": trace_id,
            "ts_us": ts,
            "dur_us": 10.0,
            "pid": pid,
            "tid": 0,
            "args": {"verb": "match"},
        }

    def test_merged_chrome_trace_shape(self):
        collector = TraceCollector()
        tid = new_trace_id()
        collector.add_records(
            tid, [self.record(1, tid, pid=10, ts=2000.0)], label="gateway"
        )
        collector.add_records(
            tid,
            [self.record(2, tid, pid=20, parent=1, ts=2500.0)],
            label="worker w0",
        )
        chrome = collector.chrome_trace(tid)
        assert chrome["otherData"]["trace_id"] == tid
        x = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in x} == {10, 20}
        assert {e["args"]["name"] for e in meta} == {"gateway", "worker w0"}
        # Timestamps re-based to the trace's earliest span.
        assert min(e["ts"] for e in x) == 0.0
        assert all(e["args"]["trace_id"] == tid for e in x)

    def test_lru_eviction_is_bounded(self):
        collector = TraceCollector(max_traces=2)
        ids = [new_trace_id() for _ in range(3)]
        for tid in ids:
            collector.add_records(tid, [self.record(1, tid)])
        assert collector.trace_ids() == ids[1:]
        assert collector.chrome_trace(ids[0]) is None
        assert collector.latest_trace_id() == ids[-1]
        assert collector.evicted["lru"] == 1

    def test_abandoned_traces_age_out(self, fresh_obs):
        """A trace that stops receiving records must not pin the store
        forever on a quiet gateway: the age sweep drops it and the
        eviction is counted by reason."""
        registry, _tracer, _log = fresh_obs
        clock = [0.0]
        collector = TraceCollector(
            max_traces=8, max_age_s=10.0, clock=lambda: clock[0]
        )
        abandoned, live = new_trace_id(), new_trace_id()
        collector.add_records(abandoned, [self.record(1, abandoned)])
        clock[0] = 6.0
        collector.add_records(live, [self.record(2, live)])
        # Touching a trace refreshes its age: at t=12 `live` (touched
        # at 6) survives, `abandoned` (touched at 0) is past 10s.
        clock[0] = 12.0
        assert collector.evict_stale() == 1
        assert collector.trace_ids() == [live]
        assert collector.chrome_trace(abandoned) is None
        assert collector.evicted == {"lru": 0, "age": 1}
        metric = registry.counter(TRACES_EVICTED_METRIC, "")
        assert metric.total() == 1
        # Idempotent: nothing else is old enough.
        assert collector.evict_stale() == 0

    def test_age_sweep_runs_on_add_records(self):
        clock = [0.0]
        collector = TraceCollector(
            max_traces=8, max_age_s=10.0, clock=lambda: clock[0]
        )
        stale = new_trace_id()
        collector.add_records(stale, [self.record(1, stale)])
        clock[0] = 30.0
        fresh = new_trace_id()
        collector.add_records(fresh, [self.record(2, fresh)])
        assert collector.trace_ids() == [fresh]
        assert collector.evicted["age"] == 1

    def test_explicit_now_overrides_the_clock(self):
        collector = TraceCollector(max_traces=8, max_age_s=10.0)
        tid = new_trace_id()
        collector.add_records(tid, [self.record(1, tid)])
        assert collector.evict_stale() == 0
        assert collector.evict_stale(now=time.monotonic() + 60.0) == 1
        assert collector.trace_ids() == []

    def test_describe_triggers_the_sweep(self):
        clock = [0.0]
        telemetry = ClusterTelemetry()
        telemetry.traces = TraceCollector(
            max_traces=8, max_age_s=10.0, clock=lambda: clock[0]
        )
        tid = new_trace_id()
        telemetry.traces.add_records(tid, [self.record(1, tid)])
        clock[0] = 30.0
        described = telemetry.describe()
        assert described["traces"] == 0
        assert telemetry.traces.evicted["age"] == 1


class _FakeHandle:
    """Scripted worker: a list of responses / WorkerError to raise."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.requests = []

    def request(self, message, timeout_s=None):
        self.requests.append(message)
        outcome = self.outcomes.pop(0) if self.outcomes else WorkerError("dry")
        if isinstance(outcome, Exception):
            raise outcome
        return dict(outcome)


class _FakeSupervisor:
    def __init__(self, handles):
        self.workers = dict(handles)
        self.worker_ids = list(handles)
        self.on_worker_ready = None

    def available(self):
        return list(self.workers)

    def worker(self, worker_id):
        return self.workers[worker_id]


def _worker_response(trace_id, span_id):
    return {
        "verb": "match",
        "status": "ok",
        "matches": {},
        "trace_id": trace_id,
        "spans": [
            TestTraceCollector.record(span_id, trace_id, pid=100 + span_id)
        ],
    }


class TestRouterTracePreservation:
    def test_failover_keeps_the_trace_id(self, fresh_obs):
        """A dead first replica must not re-mint the trace: the retry
        carries the same envelope and the survivor's spans land in the
        collector under the original id."""
        trace_id = new_trace_id()
        handles = {"w0": _FakeHandle([]), "w1": _FakeHandle([])}
        supervisor = _FakeSupervisor(handles)
        collector = TraceCollector()
        router = ClusterRouter(
            supervisor, replication=2, trace_collector=collector
        )
        message = {"verb": "match", "targets": [1], "algorithm": "ss"}
        inject_trace(message, TraceContext(trace_id))
        # Script by ring order: the preferred replica dies, the next
        # one answers.
        first, second = router.replicas_for(message)
        handles[first].outcomes = [WorkerError("boom")]
        handles[second].outcomes = [_worker_response(trace_id, 1)]
        response = router.dispatch(message)
        assert response["status"] == "ok"
        assert response["failovers"] == 1
        assert response["trace_id"] == trace_id
        assert "spans" not in response  # harvested, not leaked inline
        assert collector.trace_ids() == [trace_id]
        # Both attempts saw the same envelope.
        sent = [h.requests[0] for h in handles.values()]
        assert all(
            extract_trace(m).trace_id == trace_id for m in sent
        )

    def test_quorum_harvests_every_replica_and_still_agrees(self, fresh_obs):
        """Replica span records differ per replica; they must be popped
        before the digest so tracing cannot cause disagreement."""
        registry, _tracer, _log = fresh_obs
        trace_id = new_trace_id()
        handles = {
            "w0": _FakeHandle([_worker_response(trace_id, 1)]),
            "w1": _FakeHandle([_worker_response(trace_id, 2)]),
        }
        supervisor = _FakeSupervisor(handles)
        collector = TraceCollector()
        router = ClusterRouter(
            supervisor,
            replication=2,
            read_policy="quorum",
            trace_collector=collector,
        )
        message = {"verb": "match", "targets": [1], "algorithm": "ss"}
        inject_trace(message, TraceContext(trace_id))
        response = router.dispatch(message)
        assert response["status"] == "ok"
        assert response["quorum"] == 2  # differing spans did not split the vote
        assert response["trace_id"] == trace_id
        chrome = collector.chrome_trace(trace_id)
        x = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in x} == {101, 102}  # both replicas folded
        disagreements = registry.counter(
            "ev_cluster_quorum_disagreements_total",
            "Quorum reads where replicas returned differing payloads",
        )
        assert disagreements.total() == 0


class TestEventShipping:
    def test_ring_overwrite_increments_dropped_counter(self, fresh_obs):
        registry, _tracer, _log = fresh_obs
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("service.request.shed", i=i)
        counter = registry.counter(EVENTS_DROPPED_METRIC, "")
        assert counter.total() == 6
        assert log.dropped == 6

    def test_shipper_counts_ring_falloff_and_cap(self, fresh_obs):
        log = EventLog(capacity=4)
        shipper = EventShipper(log, max_per_collect=3)
        log.emit("service.request.shed", i=0)
        fresh, dropped = shipper.collect()
        assert (len(fresh), dropped) == (1, 0)
        # Overrun the ring between collects: 6 events into capacity 4.
        for i in range(6):
            log.emit("service.request.shed", i=i)
        fresh, dropped = shipper.collect()
        # 2 fell off the ring, 1 more shed by the per-collect cap.
        assert len(fresh) == 3
        assert dropped == 3
        assert shipper.shipped == 4
        assert shipper.dropped == 3

    def test_ship_lag_gauge_tracks_per_collect_backlog(self, fresh_obs):
        """``ev_obs_ship_lag`` exposes how far each collect ran behind
        its per-beat budget — the signal for tuning
        ``--events-per-beat`` — and falls back to zero when a beat
        keeps up."""
        registry, _tracer, _log = fresh_obs
        log = EventLog(capacity=64)
        shipper = EventShipper(log, max_per_collect=3)
        gauge = registry.gauge(SHIP_LAG_METRIC, "")
        for i in range(8):
            log.emit("service.request.shed", i=i)
        fresh, dropped = shipper.collect()
        # 8 fresh against a budget of 3: 5 behind, all capped ones shed.
        assert (len(fresh), dropped) == (3, 5)
        assert shipper.lag == 5
        assert gauge.value() == 5
        log.emit("service.request.shed", i=99)
        fresh, dropped = shipper.collect()
        assert (len(fresh), dropped) == (1, 0)
        assert shipper.lag == 0
        assert gauge.value() == 0

    def test_telemetry_beat_adopts_events_and_counts_loss(self, fresh_obs):
        registry, _tracer, log = fresh_obs
        telemetry = ClusterTelemetry()
        remote = EventLog()
        remote.emit("service.request.shed", endpoint="match")
        telemetry.on_telemetry(
            "w0",
            {
                "pid": 4242,
                "metrics": {"metrics": []},
                "events": remote.events(),
                "events_dropped": 2,
                "summary": {"backend": "bitset"},
            },
        )
        adopted = [e for e in log.events() if e.get("origin_seq") is not None]
        assert len(adopted) == 1
        assert adopted[0]["fields"]["worker"] == "w0"
        assert adopted[0]["type"] == "service.request.shed"
        shipped_dropped = registry.counter(
            "ev_cluster_events_ship_dropped_total", ""
        )
        assert shipped_dropped.total() == 2
        described = telemetry.describe()
        assert described["workers"]["w0"]["backend"] == "bitset"
        assert described["workers"]["w0"]["lag_s"] >= 0


class TestTopologyTelemetry:
    """Topology counters flow end to end: from a worker's V stage into
    the federation (with worker labels and restart-proof sums), and
    into slow-query exemplars' kernel-counter deltas."""

    def _corrupted_evidence(self, dataset, count=4):
        """Honest sighting lists with one same-tick misread each, so a
        topology-enabled filter actually prunes something."""
        store = dataset.store
        evidence = {}
        for key in store.keys:
            for eid in store.e_scenario(key).inclusive:
                evidence.setdefault(eid, []).append(key)
        corrupted = {}
        for eid in sorted(evidence):
            keys = sorted(evidence[eid], key=lambda k: (k.tick, k.cell_id))
            if len(keys) < 8:
                continue
            victim = len(keys) // 2
            elsewhere = [
                k
                for k in store.keys_at_tick(keys[victim].tick)
                if k.cell_id != keys[victim].cell_id
                and len(store.v_scenario(k)) > 0
            ]
            if not elsewhere:
                continue
            keys[victim] = elsewhere[0]
            corrupted[eid] = keys
            if len(corrupted) >= count:
                break
        assert corrupted, "no corruptible targets in this world"
        return corrupted

    def test_topology_counters_federate_across_workers(
        self, ideal_dataset, fresh_obs
    ):
        from repro.core.vid_filtering import FilterConfig, VIDFilter
        from repro.topology import TopologyConfig

        fed = MetricsFederation()
        # Worker w0: a real topology-enabled V stage publishing into
        # its own (worker-local) registry.
        w0_registry = MetricsRegistry()
        previous = set_registry(w0_registry)
        try:
            vid_filter = VIDFilter(
                ideal_dataset.store,
                FilterConfig(
                    topology=TopologyConfig(model=ideal_dataset.topology)
                ),
            )
            vid_filter.match(self._corrupted_evidence(ideal_dataset))
        finally:
            set_registry(previous)
        pruned_w0 = float(vid_filter.topology_report()["pruned"])
        assert pruned_w0 > 0
        fed.update("w0", generation=1, state=w0_registry.export_state())
        # Worker w1: a synthetic beat with its own pruning tally.
        w1_registry = MetricsRegistry()
        w1_registry.counter("ev_topology_pruned_total", "").inc(5)
        fed.update("w1", generation=1, state=w1_registry.export_state())

        assert fed.counter_value("ev_topology_pruned_total") == pytest.approx(
            pruned_w0 + 5.0
        )
        assert fed.counter_value(
            "ev_topology_pruned_total", "w0"
        ) == pytest.approx(pruned_w0)
        text = fed.render()
        pruned_lines = [
            line
            for line in text.splitlines()
            if line.startswith("ev_topology_pruned_total{")
        ]
        assert any('worker="w0"' in line for line in pruned_lines)
        assert any('worker="w1"' in line for line in pruned_lines)
        # A worker restart must rebase, not double-count.
        restarted = MetricsRegistry()
        restarted.counter("ev_topology_pruned_total", "").inc(2)
        fed.update("w1", generation=2, state=restarted.export_state())
        assert fed.counter_value(
            "ev_topology_pruned_total", "w1"
        ) == pytest.approx(7.0)

    def test_slowlog_exemplar_carries_the_topology_delta(
        self, ideal_dataset, fresh_obs
    ):
        """Regression: the slow-query kernel-counter snapshot must
        include ``topology_pruned`` so an exemplar can distinguish
        "slow because pruning collapsed" from "slow because big"."""
        from dataclasses import replace

        from repro.core.vid_filtering import FilterConfig
        from repro.obs.slowlog import SlowLogConfig
        from repro.service.server import (
            STATUS_OK,
            MatchService,
            ServiceConfig,
        )
        from repro.topology import TopologyConfig

        config = ServiceConfig(
            workers=1,
            worker_delay_s=0.02,
            slowlog=SlowLogConfig(capacity=8, threshold_s=0.001),
        )
        config = replace(
            config,
            matcher=replace(
                config.matcher,
                filter=FilterConfig(
                    topology=TopologyConfig(model=ideal_dataset.topology)
                ),
            ),
        )
        with MatchService.from_dataset(ideal_dataset, config) as service:
            targets = list(ideal_dataset.sample_targets(3, seed=11))
            assert service.match(targets).status == STATUS_OK
            records = [
                r
                for r in service.slow_queries.records()
                if r["endpoint"] == "match"
            ]
        assert records, "no match exemplar captured"
        counters = records[0]["counters"]
        assert "topology_pruned" in counters
        # Honest split evidence: pruning is the identity, the bill is 0.
        assert counters["topology_pruned"] >= 0


class TestExpositionDedup:
    def test_merge_expositions_dedupes_family_headers(self):
        a = MetricsRegistry()
        a.counter("shared_total", "shared help").inc(1, side="a")
        b = MetricsRegistry()
        b.counter("shared_total", "shared help").inc(2, side="b")
        merged = merge_expositions(
            [a.render_prometheus(), b.render_prometheus()]
        )
        assert merged.count("# HELP shared_total") == 1
        assert merged.count("# TYPE shared_total") == 1
        assert 'side="a"' in merged and 'side="b"' in merged

    def test_service_metrics_text_has_unique_headers_per_family(
        self, fresh_obs
    ):
        """Regression: families present in both the service registry and
        the process-global registry used to render two header pairs."""
        from repro.datagen.config import ExperimentConfig
        from repro.datagen.dataset import build_dataset
        from repro.service.server import MatchService, ServiceConfig

        registry, _tracer, _log = fresh_obs
        dataset = build_dataset(
            ExperimentConfig(
                num_people=30,
                cells_per_side=2,
                duration=200.0,
                sample_dt=10.0,
                warmup=50.0,
                feature_dimension=8,
                seed=5,
            )
        )
        with MatchService.from_dataset(
            dataset, ServiceConfig(workers=1)
        ) as service:
            targets = list(dataset.sample_targets(2, seed=1))
            assert service.match(targets).status == "ok"
            # Force a family collision between the two registries.
            registry.counter(
                "service_requests_total", "Requests accepted, by endpoint"
            ).inc(endpoint="external")
            text = service.metrics_text().text
        helps = re.findall(r"# HELP (\S+)", text)
        types = re.findall(r"# TYPE (\S+)", text)
        assert len(helps) == len(set(helps)), sorted(
            h for h in helps if helps.count(h) > 1
        )
        assert len(types) == len(set(types)), sorted(
            t for t in types if types.count(t) > 1
        )
        assert helps.count("service_requests_total") == 1
        assert 'endpoint="external"' in text
