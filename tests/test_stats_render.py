"""Tests for store statistics and ASCII rendering."""

import pytest

from repro.sensing.stats import (
    StoreStats,
    co_occurrence_histogram,
    occupancy_by_cell,
    occupancy_over_time,
    store_stats,
)
from repro.world.geometry import BoundingBox, Point
from repro.world.render import render_heatmap, render_points, render_sparkline


class TestStoreStats:
    def test_profile_of_ideal_world(self, ideal_dataset):
        stats = store_stats(ideal_dataset.store)
        assert stats.num_scenarios == len(ideal_dataset.store)
        assert stats.distinct_eids == len(ideal_dataset.eids)
        assert stats.total_detections == ideal_dataset.store.total_detections()
        assert stats.vague_fraction == 0.0
        assert stats.ev_balance == pytest.approx(1.0)
        assert stats.mean_eids_per_scenario > 0
        assert stats.max_eids_per_scenario >= stats.mean_eids_per_scenario

    def test_practical_world_has_vague_sightings(self, practical_dataset):
        stats = store_stats(practical_dataset.store)
        assert stats.vague_fraction > 0.0
        # Drift and window thresholds thin the inclusive E side, so the
        # balance sits above parity (extra visual figures per inclusive
        # EID) but within a sane range.
        assert 1.0 < stats.ev_balance < 2.0

    def test_occupancy_by_cell_covers_grid(self, ideal_dataset):
        occupancy = occupancy_by_cell(ideal_dataset.store)
        assert set(occupancy) <= set(range(ideal_dataset.grid.num_cells))
        assert all(v >= 0 for v in occupancy.values())

    def test_occupancy_over_time_is_tick_ordered(self, ideal_dataset):
        series = occupancy_over_time(ideal_dataset.store)
        ticks = [t for t, _n in series]
        assert ticks == sorted(ticks)
        # Ideal world: everyone observed every tick.
        for _tick, count in series:
            assert count == len(ideal_dataset.eids)

    def test_histogram_counts_all_scenarios(self, ideal_dataset):
        histogram = co_occurrence_histogram(ideal_dataset.store, bins=6)
        assert sum(count for _label, count in histogram) == len(ideal_dataset.store)
        with pytest.raises(ValueError):
            co_occurrence_histogram(ideal_dataset.store, bins=0)


class TestRenderHeatmap:
    def test_shape(self):
        values = {i: float(i) for i in range(9)}
        text = render_heatmap(values, 3, width=2)
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 6 for line in lines)

    def test_highest_row_printed_first(self):
        # Only cell 8 (top-right of a 3x3) is hot.
        text = render_heatmap({8: 1.0}, 3, width=1)
        lines = text.splitlines()
        assert lines[0][2] != " "  # top row, right column
        assert lines[2] == "   "

    def test_empty_values(self):
        text = render_heatmap({}, 2)
        assert set(text.replace("\n", "")) == {" "}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            render_heatmap({}, 0)
        with pytest.raises(ValueError):
            render_heatmap({}, 2, width=0)


class TestRenderPoints:
    REGION = BoundingBox.square(100.0)

    def test_density_and_marks(self):
        points = [Point(10, 10)] * 50 + [Point(90, 90)]
        text = render_points(points, self.REGION, rows=4, cols=8, marks=[Point(50, 50)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "X" in text
        # Dense corner is darker than the sparse one.
        assert lines[-1][0] != " "

    def test_out_of_region_points_ignored(self):
        text = render_points([Point(-5, -5)], self.REGION, rows=2, cols=2)
        assert set(text.replace("\n", "")) == {" "}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            render_points([], self.REGION, rows=0)


class TestSparkline:
    def test_monotone_series(self):
        line = render_sparkline([1, 2, 3, 4, 5, 6, 7, 8], width=8)
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert set(render_sparkline([5, 5, 5], width=3)) == {"▁"}

    def test_empty_series(self):
        assert render_sparkline([]) == ""

    def test_resampling_caps_width(self):
        assert len(render_sparkline(list(range(1000)), width=40)) <= 41

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_sparkline([1], width=0)


class TestInspectCLI:
    def test_inspect_runs(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "inspect",
                    "--people", "40",
                    "--cells", "2",
                    "--duration", "200",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scenarios over" in out
        assert "occupancy per cell" in out
