"""Tests for the EDP baseline matcher."""

import pytest

from repro.core.edp import EDPConfig, EDPMatcher
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID


def eids(*indices):
    return frozenset(EID(i) for i in indices)


def make_store(e_sets, vague_sets=None):
    scenarios = []
    for i, inclusive in enumerate(e_sets):
        vague = vague_sets[i] if vague_sets else ()
        key = ScenarioKey(cell_id=i, tick=i * 10)
        scenarios.append(
            EVScenario(
                e=EScenario(key=key, inclusive=eids(*inclusive), vague=eids(*vague)),
                v=VScenario(key=key, detections=()),
            )
        )
    return ScenarioStore(scenarios)


class TestEDPConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_scenarios_per_eid": 0},
            {"greedy_sample": 0},
            {"min_gap_ticks": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EDPConfig(**kwargs)


class TestEDPMatcher:
    def test_filters_to_singleton(self):
        store = make_store([{0, 1, 2}, {0, 1}, {0, 2}])
        result = EDPMatcher(store).run([EID(0)], universe=eids(0, 1, 2))
        assert result.candidates[EID(0)] == eids(0)
        assert EID(0) in result.distinguished

    def test_evidence_contains_target(self):
        store = make_store([{0, 1}, {0, 2}, {1, 2}])
        result = EDPMatcher(store).run([EID(0)], universe=eids(0, 1, 2))
        for key in result.evidence[EID(0)]:
            assert EID(0) in store.e_scenario(key).eids

    def test_vague_folded_into_eids(self):
        """EDP has no vague machinery: a vague sighting counts as
        presence, both for scanning and intersection."""
        store = make_store([{1}, {2}], vague_sets=[{0}, {0}])
        result = EDPMatcher(store).run([EID(0)], universe=eids(0, 1, 2))
        # Scenario 0 ({0 vague,1}) intersect scenario 1 ({0 vague,2}) -> {0}.
        assert result.candidates[EID(0)] == eids(0)

    def test_independent_per_target_selection(self):
        """Each target's scan is independent: removing other targets
        does not change a target's evidence."""
        store = make_store([{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}])
        alone = EDPMatcher(store, EDPConfig(seed=5)).run(
            [EID(0)], universe=eids(0, 1, 2)
        )
        together = EDPMatcher(store, EDPConfig(seed=5)).run(
            [EID(0), EID(1), EID(2)], universe=eids(0, 1, 2)
        )
        assert alone.evidence[EID(0)] == together.evidence[EID(0)]

    def test_recorded_deduplicates(self):
        store = make_store([{0, 1}, {0, 2}, {1, 2}])
        result = EDPMatcher(store).run(
            [EID(0), EID(1)], universe=eids(0, 1, 2)
        )
        recorded = result.recorded
        assert len(recorded) == len(set(recorded))
        assert result.num_selected == len(recorded)

    def test_budget_respected(self):
        store = make_store([{0, 1}, {0, 2}, {0, 3}, {0, 4}])
        config = EDPConfig(max_scenarios_per_eid=1, greedy_sample=1)
        result = EDPMatcher(store, config).run(
            [EID(0)], universe=eids(0, 1, 2, 3, 4)
        )
        assert len(result.evidence[EID(0)]) <= 1
        assert EID(0) in result.unresolved

    def test_greedy_prefers_stronger_shrink(self):
        # Batch contains a weak ({0,1,2,3}) and a strong ({0}) scenario;
        # greedy with a batch covering both must pick the strong one first.
        store = make_store([{0, 1, 2, 3}, {0}])
        config = EDPConfig(greedy_sample=2, seed=0)
        result = EDPMatcher(store, config).run(
            [EID(0)], universe=eids(0, 1, 2, 3)
        )
        assert result.evidence[EID(0)][0] in (ScenarioKey(1, 10),)
        assert len(result.evidence[EID(0)]) == 1

    def test_errors(self):
        store = make_store([{0, 1}])
        with pytest.raises(ValueError):
            EDPMatcher(store).run([])
        with pytest.raises(ValueError, match="duplicates"):
            EDPMatcher(store).run([EID(0), EID(0)])
        with pytest.raises(ValueError, match="not in universe"):
            EDPMatcher(store).run([EID(7)], universe=eids(0, 1))

    def test_deterministic(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(10, seed=1))
        a = EDPMatcher(ideal_dataset.store, EDPConfig(seed=9)).run(targets)
        b = EDPMatcher(ideal_dataset.store, EDPConfig(seed=9)).run(targets)
        assert a.evidence == b.evidence

    def test_no_reuse_makes_edp_select_more(self, ideal_dataset):
        """The headline comparison: on a real dataset EDP's distinct
        selected scenarios exceed the set splitter's."""
        from repro.core.set_splitting import SetSplitter, SplitConfig

        targets = list(ideal_dataset.sample_targets(40, seed=1))
        edp = EDPMatcher(ideal_dataset.store, EDPConfig(seed=2)).run(targets)
        ss = SetSplitter(ideal_dataset.store, SplitConfig(seed=2)).run(targets)
        assert edp.num_selected > ss.num_selected

    def test_clock_charged(self, ideal_dataset):
        from repro.metrics.timing import SimulatedClock

        clock = SimulatedClock()
        EDPMatcher(ideal_dataset.store, EDPConfig(seed=1), clock).run(
            list(ideal_dataset.sample_targets(5, seed=1))
        )
        assert clock.e_scenarios_examined > 0
