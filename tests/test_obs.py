"""repro.obs: registry thread-safety, span nesting, no-op mode,
Chrome-trace schema, and the pinned percentile convention."""

from __future__ import annotations

import contextvars
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.matcher import EVMatcher, MatcherConfig
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.metrics.timing import StageTimes
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    get_registry,
    get_tracer,
    nearest_rank,
    null_registry,
    null_tracer,
    set_registry,
    set_tracer,
    traced,
)


@pytest.fixture()
def registry():
    """A fresh global registry, restored after the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


@pytest.fixture()
def tracer():
    """A recording global tracer, restored after the test."""
    fresh = Tracer()
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


class TestRegistry:
    def test_counter_labels_and_totals(self, registry):
        c = registry.counter("widgets_total", "widgets")
        c.inc(2, kind="a")
        c.inc(3, kind="b")
        c.inc()
        assert c.value(kind="a") == 2
        assert c.value(kind="b") == 3
        assert c.value() == 1
        assert c.total() == 6

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_get_or_create_is_kind_checked(self, registry):
        registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_concurrent_increments_lose_nothing(self, registry):
        """The thread-safety contract: N threads x M increments land
        exactly N*M on the counter (and histogram counts agree)."""
        counter = registry.counter("hits_total")
        hist = registry.histogram("lat_seconds")
        threads, per_thread = 8, 500

        def worker(i: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=str(i % 2))
                hist.observe(0.001)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(worker, range(threads)))
        assert counter.total() == threads * per_thread
        assert hist.count() == threads * per_thread

    def test_prometheus_exposition_shape(self, registry):
        registry.counter("req_total", "requests").inc(3, ep="match")
        registry.gauge("depth").set(2.5)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{ep="match"} 3' in text
        assert "depth 2.5" in text
        assert 'lat_bucket{le="0.1"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text


class TestPercentileConvention:
    def test_nearest_rank_is_pinned(self):
        # The documented convention: p50 of [1,2,3,4] is the
        # ceil(0.5*4)=2nd smallest — deterministically 2, never 2.5.
        assert nearest_rank([1, 2, 3, 4], 50) == 2
        assert nearest_rank([4, 3, 2, 1], 50) == 2
        assert nearest_rank([1, 2, 3, 4], 75) == 3
        assert nearest_rank([1, 2, 3, 4], 100) == 4
        assert nearest_rank([1, 2, 3, 4], 0) == 1
        assert nearest_rank([], 50) == 0.0

    def test_histogram_uses_nearest_rank(self):
        hist = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.percentile(50) == 2.0

    def test_observe_many_matches_repeated_observe(self):
        values = [0.03, 0.4, 7.0, 0.4, 120.0]
        loop = Histogram("h_loop")
        batch = Histogram("h_batch")
        for v in values:
            loop.observe(v, stage="e")
        batch.observe_many(values, stage="e")
        batch.observe_many([], stage="e")  # empty batch is a no-op
        assert batch.count(stage="e") == loop.count(stage="e")
        assert batch.sum(stage="e") == loop.sum(stage="e")
        assert batch.samples(stage="e") == loop.samples(stage="e")
        (key_a, series_a), = loop.series()
        (key_b, series_b), = batch.series()
        assert key_a == key_b
        assert series_a.bucket_counts == series_b.bucket_counts

    def test_latency_histogram_matches(self):
        from repro.service.metrics import LatencyHistogram

        hist = LatencyHistogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.record(v)
        assert hist.percentile(50) == 2.0
        assert hist.count == 4


class TestNoOpMode:
    def test_null_instruments_retain_nothing(self):
        reg = null_registry()
        c = reg.counter("c_total")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc(5)
        g.set(3)
        h.observe(1.0)
        assert c.total() == 0
        assert g.value() == 0
        assert h.count() == 0
        assert h.samples() == []  # zero sample allocations retained
        assert reg.render_prometheus() == ""

    def test_null_tracer_hands_out_one_shared_span(self):
        t = null_tracer()
        spans = {id(t.span("a")), id(t.span("b", parent=None, k=1))}
        assert len(spans) == 1  # the singleton no-op span
        with t.span("c") as s:
            s.set(x=1)
        assert t.spans == ()
        assert t.to_chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_default_tracer_is_noop(self):
        assert isinstance(get_tracer(), NullTracer) or isinstance(
            get_tracer(), Tracer
        )


class TestTracer:
    def test_nesting_follows_call_structure(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        roots = tracer.roots
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].children[0].parent is roots[0]

    def test_parenting_across_threads_via_copy_context(self, tracer):
        """A context snapshot carries the open span to a worker thread."""
        with tracer.span("stage"):
            contexts = [contextvars.copy_context() for _ in range(4)]
            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(
                    lambda i: contexts[i].run(self._run_task, tracer, i),
                    range(4),
                ))
        stage = tracer.roots[0]
        tasks = [c for c in stage.children if c.name == "task"]
        assert len(tasks) == 4
        assert {c.parent for c in tasks} == {stage}
        # The worker really ran elsewhere: at least one differing tid.
        assert any(c.tid != stage.tid for c in tasks)

    @staticmethod
    def _run_task(tracer, i: int) -> None:
        with tracer.span("task", index=i):
            pass

    def test_decorator_and_traced(self, tracer):
        @tracer.trace("fn.span")
        def f(x):
            return x + 1

        @traced("g.span")
        def g(x):
            return x * 2

        assert f(1) == 2
        assert g(2) == 4
        names = {s.name for s in tracer.spans}
        assert {"fn.span", "g.span"} <= names

    def test_chrome_trace_schema(self, tracer):
        with tracer.span("a.outer", targets=3):
            with tracer.span("a.inner"):
                pass
        data = tracer.to_chrome_trace()
        text = json.dumps(data)  # must be valid JSON
        assert json.loads(text) == data
        events = data["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["cat"] == "a"
        # Sorted by start time: outer opened first.
        assert events[0]["name"] == "a.outer"
        assert events[0]["args"]["targets"] == 3
        # The child nests inside the parent's [ts, ts+dur] window.
        outer, inner = events[0], events[1]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_render_tree_elides_siblings(self, tracer):
        with tracer.span("parent"):
            for i in range(15):
                with tracer.span("child", i=i):
                    pass
        text = tracer.render_tree(max_children=12)
        assert "... 3 more" in text


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset(
        ExperimentConfig(
            num_people=60,
            cells_per_side=3,
            duration=400.0,
            sample_dt=10.0,
            warmup=100.0,
            seed=11,
        )
    )


class TestPipelineInstrumentation:
    def test_match_records_spans_and_metrics(self, tiny_dataset, registry, tracer):
        matcher = EVMatcher(tiny_dataset.store, MatcherConfig())
        targets = list(tiny_dataset.sample_targets(6, seed=3))
        matcher.match(targets)
        names = {s.name for s in tracer.spans}
        assert {"match", "e.split", "v.filter", "v.match_one"} <= names
        assert registry.counter("ev_match_runs_total").value(algorithm="ss") == 1
        examined = registry.get("ev_e_scenarios_examined_total")
        assert examined is not None and examined.total() > 0
        extracted = registry.counter("ev_v_detections_extracted_total")
        assert extracted.total() > 0
        # Simulated stage times mirror the report via StageTimes.as_dict.
        sim = registry.counter("ev_simulated_stage_seconds_total")
        assert sim.value(stage="v", algorithm="ss") > 0

    def test_stage_times_as_dict(self):
        times = StageTimes(e_time=1.5, v_time=2.5)
        assert times.as_dict() == {"e": 1.5, "v": 2.5, "total": 4.0}

    def test_mapreduce_task_spans_parent_under_stage(self, registry, tracer):
        engine = MapReduceEngine(executor="threads", max_workers=4)
        engine.dfs.write_records("in", list(range(40)), 8)
        job = MapReduceJob(
            name="sum",
            mapper=lambda r: [(r % 4, r)],
            reducer=lambda k, vs: [(k, sum(vs))],
            num_reducers=4,
        )
        engine.run(job, "in", "out")
        jobs = [s for s in tracer.spans if s.name == "mr.job"]
        assert len(jobs) == 1
        stages = [c for c in jobs[0].children if c.name == "mr.stage"]
        assert len(stages) == 2  # map + reduce
        map_stage = next(s for s in stages if s.args["stage"].endswith(":map"))
        tasks = [c for c in map_stage.children if c.name == "mr.task"]
        assert len(tasks) == 8
        assert all(c.parent is map_stage for c in tasks)
        assert registry.counter("mr_tasks_total").value(stage="map") == 8
        assert registry.counter("mr_jobs_total").total() == 1
        assert registry.counter("mr_records_in_total").total() == 40

    def test_service_metrics_verb(self, tiny_dataset, registry):
        from repro.service import MatchService

        with MatchService.from_dataset(tiny_dataset) as service:
            service.match(list(tiny_dataset.eids[:3]))
            text = service.metrics_text().text
        assert 'service_requests_total{endpoint="match"} 1' in text
        assert "service_latency_seconds_bucket" in text
        # The global registry's pipeline counters ride along.
        assert "ev_v_detections_extracted_total" in text
        assert 'ev_cache_hit_rate{cache="features"}' in text

    def test_noop_overhead_path_unchanged_results(self, tiny_dataset):
        """With the no-op registry/tracer installed, matching still
        produces identical results (instrumentation is inert)."""
        targets = list(tiny_dataset.sample_targets(4, seed=5))
        baseline = EVMatcher(tiny_dataset.store).match(targets)
        prev_reg = set_registry(null_registry())
        prev_tr = set_tracer(null_tracer())
        try:
            quiet = EVMatcher(tiny_dataset.store).match(targets)
        finally:
            set_registry(prev_reg)
            set_tracer(prev_tr)
        assert quiet.predictions() == baseline.predictions()
        assert quiet.num_selected == baseline.num_selected
