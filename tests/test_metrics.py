"""Tests for the accuracy metric, cost model / clock, and bounds."""

import numpy as np
import pytest

from repro.core.analysis import (
    ideal_lower_bound,
    ideal_upper_bound,
    practical_upper_bound,
)
from repro.metrics.accuracy import AccuracyReport, accuracy_of, is_correct_match
from repro.metrics.timing import CostModel, SimulatedClock, StageTimes
from repro.sensing.scenarios import Detection
from repro.world.entities import EID, VID


def det(vid_index: int, det_id: int = 0) -> Detection:
    return Detection(
        detection_id=det_id, feature=np.zeros(2), true_vid=VID(vid_index)
    )


class TestIsCorrectMatch:
    def test_strict_majority_required(self):
        true = VID(0)
        # 2 of 3 -> correct.
        assert is_correct_match([det(0, 1), det(0, 2), det(9, 3)], true)
        # 2 of 4 -> tie, not a strict majority -> incorrect (paper rule).
        assert not is_correct_match(
            [det(0, 1), det(0, 2), det(9, 3), det(9, 4)], true
        )

    def test_empty_choices_incorrect(self):
        assert not is_correct_match([], VID(0))

    def test_single_choice(self):
        assert is_correct_match([det(0, 1)], VID(0))
        assert not is_correct_match([det(1, 1)], VID(0))

    def test_majority_of_wrong_vid(self):
        assert not is_correct_match([det(5, 1), det(5, 2), det(0, 3)], VID(0))


class TestAccuracyOf:
    def test_counts_and_percentage(self):
        truth = {EID(0): VID(0), EID(1): VID(1)}
        chosen = {
            EID(0): [det(0, 1), det(0, 2)],
            EID(1): [det(9, 3)],
        }
        report = accuracy_of(chosen, truth)
        assert report.total == 2
        assert report.correct == 1
        assert report.accuracy == pytest.approx(0.5)
        assert report.percentage == pytest.approx(50.0)

    def test_targets_penalize_missing_entries(self):
        truth = {EID(0): VID(0), EID(1): VID(1)}
        chosen = {EID(0): [det(0, 1)]}
        report = accuracy_of(chosen, truth, targets=[EID(0), EID(1)])
        assert report.total == 2
        assert report.unmatched == 1
        assert report.correct == 1

    def test_unknown_target_raises(self):
        with pytest.raises(KeyError):
            accuracy_of({}, {}, targets=[EID(5)])

    def test_empty_run(self):
        report = accuracy_of({}, {})
        assert report.total == 0
        assert report.accuracy == 0.0

    def test_str_mentions_counts(self):
        report = AccuracyReport(total=4, correct=3, unmatched=1)
        text = str(report)
        assert "3/4" in text and "75.00%" in text


class TestCostModel:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(e_scenario_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(v_extraction_cost=-1.0)

    def test_extraction_dominates_comparison(self):
        model = CostModel()
        assert model.v_extraction_cost > 1000 * model.v_comparison_cost


class TestSimulatedClock:
    def test_charging_accumulates(self):
        clock = SimulatedClock(CostModel(1.0, 2.0, 0.5))
        clock.charge_e_scenarios(3)
        clock.charge_extraction(4)
        clock.charge_comparisons(10)
        times = clock.times()
        assert times.e_time == pytest.approx(3.0)
        assert times.v_time == pytest.approx(8.0 + 5.0)
        assert clock.e_scenarios_examined == 3
        assert clock.detections_extracted == 4
        assert clock.comparisons == 10

    def test_parallelism_division(self):
        clock = SimulatedClock(CostModel(1.0, 1.0, 0.0))
        clock.charge_e_scenarios(10)
        clock.charge_extraction(20)
        times = clock.times(parallelism=10)
        assert times.e_time == pytest.approx(1.0)
        assert times.v_time == pytest.approx(2.0)

    def test_invalid_arguments(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.charge_e_scenarios(-1)
        with pytest.raises(ValueError):
            clock.charge_extraction(-1)
        with pytest.raises(ValueError):
            clock.charge_comparisons(-1)
        with pytest.raises(ValueError):
            clock.times(parallelism=0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge_extraction(5)
        clock.reset()
        assert clock.times().total == 0.0
        assert clock.detections_extracted == 0


class TestStageTimes:
    def test_total(self):
        assert StageTimes(e_time=1.0, v_time=2.0).total == pytest.approx(3.0)

    def test_scaled(self):
        scaled = StageTimes(e_time=2.0, v_time=4.0).scaled(0.5)
        assert scaled.e_time == pytest.approx(1.0)
        assert scaled.v_time == pytest.approx(2.0)
        with pytest.raises(ValueError):
            StageTimes().scaled(-1.0)


class TestBounds:
    def test_ideal_lower_bound(self):
        assert ideal_lower_bound(1) == 0
        assert ideal_lower_bound(2) == 1
        assert ideal_lower_bound(8) == 3
        assert ideal_lower_bound(9) == 4

    def test_ideal_upper_bound(self):
        assert ideal_upper_bound(1) == 0
        assert ideal_upper_bound(10) == 9

    def test_practical_upper_bound(self):
        assert practical_upper_bound(4) == 16

    def test_bounds_ordered(self):
        for n in (2, 5, 17, 100):
            assert (
                ideal_lower_bound(n)
                <= ideal_upper_bound(n)
                <= practical_upper_bound(n)
            )

    @pytest.mark.parametrize("fn", [ideal_lower_bound, ideal_upper_bound, practical_upper_bound])
    def test_nonpositive_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(0)


class TestEvidenceEstimates:
    def test_validation(self):
        from repro.core.analysis import (
            expected_evidence_per_eid,
            expected_selected_scenarios,
        )

        with pytest.raises(ValueError):
            expected_evidence_per_eid(1, 1.0)
        with pytest.raises(ValueError):
            expected_evidence_per_eid(10, 0.5)
        with pytest.raises(ValueError):
            expected_evidence_per_eid(10, 20.0)
        with pytest.raises(ValueError):
            expected_selected_scenarios(0, 10, 2.0)

    def test_degenerate_cases(self):
        from repro.core.analysis import expected_evidence_per_eid

        # density 1: one scenario isolates the target.
        assert expected_evidence_per_eid(100, 1.0) == 1.0
        # everyone always together: no scenario can ever separate.
        assert expected_evidence_per_eid(100, 100.0) == 100.0

    def test_evidence_grows_with_density(self):
        from repro.core.analysis import expected_evidence_per_eid

        estimates = [
            expected_evidence_per_eid(1000, d) for d in (10, 40, 111, 250)
        ]
        assert estimates == sorted(estimates)

    def test_selected_falls_with_density(self):
        from repro.core.analysis import expected_selected_scenarios

        estimates = [
            expected_selected_scenarios(600, 1000, d) for d in (10, 40, 111)
        ]
        assert estimates == sorted(estimates, reverse=True)

    def test_estimate_is_lower_side_of_simulation(self, ideal_dataset):
        """Measured evidence lists exceed the independence estimate by
        at most ~2 scenarios (mobility correlation)."""
        from repro.core.analysis import expected_evidence_per_eid
        from repro.core.set_splitting import SetSplitter, SplitConfig

        universe = len(ideal_dataset.eids)
        density = universe / ideal_dataset.grid.num_cells
        estimate = expected_evidence_per_eid(universe, density)
        targets = list(ideal_dataset.sample_targets(40, seed=1))
        split = SetSplitter(ideal_dataset.store, SplitConfig(seed=7)).run(targets)
        measured = split.avg_scenarios_per_eid
        assert measured >= estimate - 0.5
        assert measured <= estimate + 2.5
