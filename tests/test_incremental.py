"""Tests for the streaming (incremental) matcher."""

import pytest

from repro.core.incremental import IncrementalMatcher
from repro.core.set_splitting import SetSplitter, SplitConfig
from repro.core.vid_filtering import VIDFilter
from repro.metrics.accuracy import accuracy_of
from repro.world.entities import EID


def replay_all(matcher, store):
    emissions = []
    for tick in store.ticks:
        emissions.extend(matcher.observe_tick(store, tick))
    return emissions


class TestStreamBasics:
    def test_empty_universe_rejected(self, ideal_dataset):
        with pytest.raises(ValueError):
            IncrementalMatcher(ideal_dataset.store, [])

    def test_unknown_target_rejected(self, ideal_dataset):
        matcher = IncrementalMatcher(ideal_dataset.store, ideal_dataset.eids)
        with pytest.raises(ValueError):
            matcher.add_target(EID(10**6))

    def test_evidence_of_untracked_raises(self, ideal_dataset):
        matcher = IncrementalMatcher(ideal_dataset.store, ideal_dataset.eids)
        with pytest.raises(KeyError):
            matcher.evidence_of(EID(0))

    def test_targets_emit_once(self, ideal_dataset):
        matcher = IncrementalMatcher(ideal_dataset.store, ideal_dataset.eids)
        targets = list(ideal_dataset.sample_targets(10, seed=1))
        matcher.add_targets(targets)
        emissions = replay_all(matcher, ideal_dataset.store)
        eids = [e.eid for e in emissions]
        assert len(eids) == len(set(eids))
        # Re-adding an emitted target is a no-op.
        matcher.add_target(eids[0])
        assert eids[0] not in matcher.pending


class TestStreamSemantics:
    def test_replay_matches_batch_accuracy(self, ideal_dataset):
        """Streaming a store in tick order must land in the same
        accuracy band as the batch matcher."""
        targets = list(ideal_dataset.sample_targets(30, seed=2))
        stream = IncrementalMatcher(
            ideal_dataset.store, ideal_dataset.eids, SplitConfig(seed=7)
        )
        stream.add_targets(targets)
        replay_all(stream, ideal_dataset.store)
        chosen = {
            eid: em.result.chosen for eid, em in stream.emissions.items()
        }
        report = accuracy_of(chosen, ideal_dataset.truth, targets=targets)
        assert report.accuracy >= 0.8

    def test_stream_evidence_is_valid_batch_evidence(self, ideal_dataset):
        """Every streamed evidence list satisfies the batch invariants:
        target inclusive in each scenario, intersection singleton."""
        targets = list(ideal_dataset.sample_targets(10, seed=3))
        stream = IncrementalMatcher(
            ideal_dataset.store, ideal_dataset.eids, SplitConfig(seed=7)
        )
        stream.add_targets(targets)
        replay_all(stream, ideal_dataset.store)
        for eid, emission in stream.emissions.items():
            expected = set(ideal_dataset.eids)
            for key in emission.result.scenario_keys:
                e_scenario = ideal_dataset.store.e_scenario(key)
                assert eid in e_scenario.inclusive
                expected &= set(e_scenario.inclusive | e_scenario.vague)
            # The V stage may drop detection-less scenarios, so check
            # against the raw evidence list instead when they differ.
            raw = stream.evidence_of(eid)
            raw_expected = set(ideal_dataset.eids)
            for key in raw:
                e_scenario = ideal_dataset.store.e_scenario(key)
                raw_expected &= set(e_scenario.inclusive | e_scenario.vague)
            assert raw_expected == {eid}

    def test_latency_monotone_in_arrival(self, ideal_dataset):
        """Targets added later cannot have fired earlier."""
        store = ideal_dataset.store
        early_target, late_target = ideal_dataset.sample_targets(2, seed=4)
        stream = IncrementalMatcher(store, ideal_dataset.eids, SplitConfig(seed=7))
        stream.add_target(early_target)
        ticks = list(store.ticks)
        midpoint = ticks[len(ticks) // 2]
        for tick in ticks:
            if tick == midpoint:
                stream.add_target(late_target)
            stream.observe_tick(store, tick)
        latency = stream.latency_report()
        if late_target in latency:
            assert latency[late_target] >= midpoint

    def test_mid_stream_target_only_uses_later_evidence(self, ideal_dataset):
        store = ideal_dataset.store
        target = ideal_dataset.sample_targets(1, seed=5)[0]
        stream = IncrementalMatcher(store, ideal_dataset.eids, SplitConfig(seed=7))
        ticks = list(store.ticks)
        midpoint = ticks[len(ticks) // 2]
        for tick in ticks:
            if tick == midpoint:
                stream.add_target(target)
            stream.observe_tick(store, tick)
        evidence = stream.evidence_of(target)
        assert all(key.tick >= midpoint for key in evidence)

    def test_latency_report_contents(self, ideal_dataset):
        """latency_report covers exactly the emitted targets, and each
        reported tick is the tick its emission fired at."""
        targets = list(ideal_dataset.sample_targets(12, seed=8))
        stream = IncrementalMatcher(
            ideal_dataset.store, ideal_dataset.eids, SplitConfig(seed=7)
        )
        stream.add_targets(targets)
        replay_all(stream, ideal_dataset.store)
        latency = stream.latency_report()
        assert set(latency) == set(stream.emissions)
        assert set(latency).isdisjoint(stream.pending)
        ticks = set(ideal_dataset.store.ticks)
        for eid, tick in latency.items():
            assert tick == stream.emissions[eid].emitted_at_tick
            assert tick in ticks

    def test_pending_shrinks_over_ticks(self, ideal_dataset):
        """Without new targets, the pending set only ever shrinks, by
        exactly the emissions each tick fires."""
        targets = list(ideal_dataset.sample_targets(15, seed=9))
        stream = IncrementalMatcher(
            ideal_dataset.store, ideal_dataset.eids, SplitConfig(seed=7)
        )
        stream.add_targets(targets)
        assert stream.pending == frozenset(targets)
        previous = stream.pending
        for tick in ideal_dataset.store.ticks:
            fired = stream.observe_tick(ideal_dataset.store, tick)
            current = stream.pending
            assert current <= previous
            assert previous - current == {em.eid for em in fired}
            previous = current
        assert stream.pending == frozenset(targets) - set(stream.emissions)
        assert len(stream.emissions) > 0

    def test_add_target_mid_stream_is_tracked_fresh(self, ideal_dataset):
        """A mid-stream add_target starts pending with no evidence and
        every candidate still possible."""
        store = ideal_dataset.store
        early, late = ideal_dataset.sample_targets(2, seed=10)
        stream = IncrementalMatcher(store, ideal_dataset.eids, SplitConfig(seed=7))
        stream.add_target(early)
        ticks = list(store.ticks)
        for tick in ticks[: len(ticks) // 2]:
            stream.observe_tick(store, tick)
        stream.add_target(late)
        assert late in stream.pending
        assert stream.evidence_of(late) == ()
        for tick in ticks[len(ticks) // 2 :]:
            stream.observe_tick(store, tick)
        # The late target either matched from post-add evidence only,
        # or is still pending; it never borrows earlier scenarios.
        if late in stream.emissions:
            assert all(
                key.tick >= ticks[len(ticks) // 2]
                for key in stream.emissions[late].result.scenario_keys
            )

    def test_emission_metadata(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(5, seed=6))
        stream = IncrementalMatcher(
            ideal_dataset.store, ideal_dataset.eids, SplitConfig(seed=7)
        )
        stream.add_targets(targets)
        emissions = replay_all(stream, ideal_dataset.store)
        for emission in emissions:
            assert emission.scenarios_consumed <= stream.scenarios_consumed
            assert emission.result.scenario_keys
            assert emission.emitted_at_tick == emission.result.scenario_keys[-1].tick
