"""Tests for the E stage: Algorithm 1, the practical variant, and the
production SetSplitter (candidates, evidence, strategies, bounds)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import ideal_lower_bound, ideal_upper_bound, practical_upper_bound
from repro.core.set_splitting import (
    SelectionStrategy,
    SetSplitter,
    SplitConfig,
    algorithm1_set_split,
    practical_universal_split,
)
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID


def eids(*indices):
    return frozenset(EID(i) for i in indices)


def make_store(e_sets, vague_sets=None):
    """Build a store from lists of (inclusive, vague) EID index sets;
    one scenario per entry, each on its own (cell, tick)."""
    scenarios = []
    for i, inclusive in enumerate(e_sets):
        vague = vague_sets[i] if vague_sets else ()
        key = ScenarioKey(cell_id=i, tick=i)
        scenarios.append(
            EVScenario(
                e=EScenario(
                    key=key,
                    inclusive=eids(*inclusive),
                    vague=eids(*vague),
                ),
                v=VScenario(key=key, detections=()),
            )
        )
    return ScenarioStore(scenarios)


class TestAlgorithm1:
    def test_distinguishes_with_adequate_scenarios(self):
        universe = eids(0, 1, 2, 3)
        store = make_store([{0, 1}, {0, 2}, {0, 3}])
        recorded, partition = algorithm1_set_split(
            universe, list(store.e_scenarios())
        )
        assert partition.num_sets == 4
        # {0,2} splits both {0,1} and {2,3}, so 2 scenarios can suffice.
        assert 2 <= len(recorded) <= 3

    def test_skips_ineffective_scenarios(self):
        universe = eids(0, 1)
        store = make_store([{0, 1}, {5, 6}, {0}])
        recorded, partition = algorithm1_set_split(
            universe, list(store.e_scenarios())
        )
        assert recorded == [ScenarioKey(2, 2)]
        assert partition.num_sets == 2

    def test_respects_budget(self):
        universe = eids(0, 1, 2, 3)
        store = make_store([{0}, {1}, {2}])
        recorded, partition = algorithm1_set_split(
            universe, list(store.e_scenarios()), max_scenarios=1
        )
        assert len(recorded) == 1
        assert partition.num_sets == 2

    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=11)),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_theorem_4_2_upper_bound(self, scenario_sets):
        """At most n-1 effective scenarios are ever recorded."""
        n = 12
        universe = eids(*range(n))
        store = make_store(scenario_sets or [set()])
        recorded, partition = algorithm1_set_split(
            universe, list(store.e_scenarios())
        )
        assert len(recorded) <= ideal_upper_bound(n)
        # Each recorded scenario grew the partition by at least one set.
        assert partition.num_sets >= len(recorded) + 1

    def test_theorem_4_2_lower_bound_achievable(self):
        """log2(n) scenarios suffice when they encode a binary code."""
        n = 8
        universe = eids(*range(n))
        bit_sets = [
            {i for i in range(n) if i & (1 << b)} for b in range(3)
        ]
        store = make_store(bit_sets)
        recorded, partition = algorithm1_set_split(
            universe, list(store.e_scenarios())
        )
        assert len(recorded) == ideal_lower_bound(n) == 3
        assert partition.num_sets == n


class TestPracticalUniversalSplit:
    def test_vague_never_distinguishes(self):
        universe = eids(0, 1, 2)
        # EID 2 is always vague: it can never be separated from anyone.
        store = make_store([{0}, {1}], vague_sets=[{2}, {2}])
        recorded, tracker = practical_universal_split(
            universe, list(store.e_scenarios())
        )
        assert not tracker.confusable(EID(0), EID(1))
        assert tracker.confusable(EID(2), EID(0))
        assert tracker.confusable(EID(2), EID(1))

    def test_ideal_input_fully_distinguishes(self):
        universe = eids(0, 1, 2, 3)
        store = make_store([{0, 1}, {0, 2}, {0, 3}])
        recorded, tracker = practical_universal_split(
            universe, list(store.e_scenarios())
        )
        assert tracker.num_distinguished() == 4
        assert 2 <= len(recorded) <= 3

    def test_theorem_4_4_bound(self):
        n = 6
        universe = eids(*range(n))
        sets = [{i} for i in range(n)] * n
        store_sets = sets[: n * n]
        store = make_store(store_sets)
        recorded, _tracker = practical_universal_split(
            universe, list(store.e_scenarios())
        )
        assert len(recorded) <= practical_upper_bound(n)

    def test_budget(self):
        universe = eids(0, 1, 2)
        store = make_store([{0}, {1}, {2}])
        recorded, tracker = practical_universal_split(
            universe, list(store.e_scenarios()), max_scenarios=1
        )
        assert len(recorded) <= 1


class TestSplitConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            SplitConfig(max_scenarios=0)
        with pytest.raises(ValueError):
            SplitConfig(min_gap_ticks=-1)


class TestSetSplitter:
    def test_single_target(self):
        store = make_store([{0, 1, 2}, {0, 1}, {0, 2}])
        splitter = SetSplitter(store, SplitConfig(strategy=SelectionStrategy.SEQUENTIAL, min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        assert result.candidates[EID(0)] == eids(0)
        assert result.distinguished == eids(0)

    def test_candidates_equal_evidence_intersection(self):
        store = make_store([{0, 1, 2, 3}, {0, 1}, {0, 2}, {1, 3}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0), EID(1)], universe=eids(0, 1, 2, 3))
        for target in result.targets:
            expected = set(eids(0, 1, 2, 3))
            for key in result.evidence[target]:
                e = store.e_scenario(key)
                expected &= set(e.inclusive | e.vague)
            assert result.candidates[target] == frozenset(expected)

    def test_evidence_scenarios_contain_target_inclusively(self):
        store = make_store([{0, 1}, {0, 2}, {1, 2}, {0}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        for key in result.evidence[EID(0)]:
            assert EID(0) in store.e_scenario(key).inclusive

    def test_unresolvable_target_reported(self):
        # EIDs 0 and 1 always co-occur: nothing can separate them.
        store = make_store([{0, 1}, {0, 1, 2}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        assert EID(0) in result.unresolved
        assert result.candidates[EID(0)] == eids(0, 1)

    def test_vague_target_sightings_not_used(self):
        # EID 0 is only ever vague; it has no usable positive evidence.
        store = make_store([{1}, {2}], vague_sets=[{0}, {0}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        assert result.evidence[EID(0)] == []
        assert EID(0) in result.unresolved

    def test_vague_eids_not_ruled_out(self):
        # Scenario 0: {0 inclusive, 2 vague}.  Intersecting for target 0
        # must keep 2 as a candidate.
        store = make_store([{0}], vague_sets=[{2}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        assert result.candidates[EID(0)] == eids(0, 2)

    def test_treat_vague_as_inclusive_ablation(self):
        store = make_store([{0}], vague_sets=[{2}])
        splitter = SetSplitter(
            store,
            SplitConfig(min_gap_ticks=0, treat_vague_as_inclusive=True),
        )
        result = splitter.run([EID(0)], universe=eids(0, 1, 2))
        # With the ablation, the vague EID counts as present, so the
        # scenario cannot even serve as positive evidence filtering it out.
        assert result.candidates[EID(0)] == eids(0, 2)

    def test_recorded_counts_each_scenario_once(self):
        store = make_store([{0, 1}, {0, 2}, {1, 2}])
        splitter = SetSplitter(store, SplitConfig(min_gap_ticks=0))
        result = splitter.run([EID(0), EID(1), EID(2)], universe=eids(0, 1, 2))
        assert len(result.recorded) == len(set(result.recorded))

    def test_min_gap_rule_blocks_same_cell_adjacent_ticks(self):
        scenarios = []
        # Same cell, ticks 0 and 1: the second is informative but too
        # close in time to the first, so it must not become evidence.
        for tick, inclusive in ((0, {0, 1}), (1, {0, 3}), (50, {0, 2})):
            key = ScenarioKey(cell_id=0, tick=tick)
            scenarios.append(
                EVScenario(
                    e=EScenario(key=key, inclusive=eids(*inclusive)),
                    v=VScenario(key=key, detections=()),
                )
            )
        store = ScenarioStore(scenarios)
        splitter = SetSplitter(
            store,
            SplitConfig(strategy=SelectionStrategy.SEQUENTIAL, min_gap_ticks=5),
        )
        result = splitter.run([EID(0)], universe=eids(0, 1, 2, 3))
        ticks = [k.tick for k in result.evidence[EID(0)]]
        assert ticks == [0, 50]

    def test_budget_respected(self):
        store = make_store([{0, 1}, {0, 2}, {0, 3}])
        splitter = SetSplitter(store, SplitConfig(max_scenarios=2, min_gap_ticks=0))
        result = splitter.run([EID(0)], universe=eids(0, 1, 2, 3))
        assert result.scenarios_examined <= 2

    def test_duplicate_targets_rejected(self):
        store = make_store([{0, 1}])
        with pytest.raises(ValueError, match="duplicates"):
            SetSplitter(store).run([EID(0), EID(0)])

    def test_empty_targets_rejected(self):
        store = make_store([{0, 1}])
        with pytest.raises(ValueError):
            SetSplitter(store).run([])

    def test_target_outside_universe_rejected(self):
        store = make_store([{0, 1}])
        with pytest.raises(ValueError, match="not in universe"):
            SetSplitter(store).run([EID(9)], universe=eids(0, 1))

    def test_exclude_skips_scenarios(self):
        store = make_store([{0, 1}, {0, 2}])
        splitter = SetSplitter(
            store, SplitConfig(strategy=SelectionStrategy.SEQUENTIAL, min_gap_ticks=0)
        )
        excluded = frozenset({ScenarioKey(0, 0)})
        result = splitter.run([EID(0)], universe=eids(0, 1, 2), exclude=excluded)
        assert ScenarioKey(0, 0) not in result.evidence[EID(0)]

    def test_strategies_all_distinguish(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(15, seed=1))
        for strategy in SelectionStrategy:
            splitter = SetSplitter(
                ideal_dataset.store, SplitConfig(strategy=strategy, seed=2)
            )
            result = splitter.run(targets)
            assert len(result.unresolved) <= 1, strategy

    def test_deterministic_given_seed(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(10, seed=1))
        a = SetSplitter(ideal_dataset.store, SplitConfig(seed=5)).run(targets)
        b = SetSplitter(ideal_dataset.store, SplitConfig(seed=5)).run(targets)
        assert a.recorded == b.recorded
        assert a.evidence == b.evidence

    def test_clock_charged(self, ideal_dataset):
        from repro.metrics.timing import SimulatedClock

        clock = SimulatedClock()
        splitter = SetSplitter(ideal_dataset.store, SplitConfig(seed=5), clock)
        splitter.run(list(ideal_dataset.sample_targets(10, seed=1)))
        assert clock.e_scenarios_examined > 0
        assert clock.times().e_time > 0

    def test_elastic_sizes_monotone_selection(self, ideal_dataset):
        """More targets never select fewer scenarios (reuse grows but
        coverage requirements grow too)."""
        small = SetSplitter(ideal_dataset.store, SplitConfig(seed=5)).run(
            list(ideal_dataset.sample_targets(5, seed=1))
        )
        large = SetSplitter(ideal_dataset.store, SplitConfig(seed=5)).run(
            list(ideal_dataset.sample_targets(60, seed=1))
        )
        assert large.num_selected >= small.num_selected
