"""Service health: rolling-window SLO verdicts, alone and under load."""

from __future__ import annotations

import pytest

from repro.service import (
    LoadConfig,
    MatchService,
    ServiceConfig,
    SLOConfig,
    run_load,
)
from repro.service.api import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    MatchRequest,
)
from repro.service.health import HealthTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestHealthTracker:
    def make(self, **overrides):
        clock = FakeClock()
        defaults = dict(window_s=60.0, min_samples=4)
        defaults.update(overrides)
        return HealthTracker(SLOConfig(**defaults), clock=clock), clock

    def test_insufficient_data_is_healthy(self):
        tracker, _clock = self.make(min_samples=10)
        for _ in range(3):
            tracker.record(STATUS_OK, 0.001)
        health = tracker.snapshot()
        assert health.healthy
        assert health.samples == 3
        assert "insufficient" in health.note
        assert health.checks == ()

    def test_all_objectives_met(self):
        tracker, _clock = self.make()
        for _ in range(10):
            tracker.record(STATUS_OK, 0.01)
        health = tracker.snapshot()
        assert health.healthy
        assert {c.name for c in health.checks} == {
            "latency_p99_s", "shed_rate", "error_rate"
        }
        assert all(c.ok for c in health.checks)

    def test_latency_breach_flips_verdict(self):
        tracker, _clock = self.make(latency_p99_s=0.05)
        for _ in range(10):
            tracker.record(STATUS_OK, 0.2)
        health = tracker.snapshot()
        assert not health.healthy
        (latency,) = [c for c in health.checks if c.name == "latency_p99_s"]
        assert not latency.ok and latency.observed == pytest.approx(0.2)

    def test_shed_and_error_rates(self):
        tracker, _clock = self.make(max_shed_rate=0.2, max_error_rate=0.2)
        for _ in range(6):
            tracker.record(STATUS_OK, 0.001)
        for _ in range(2):
            tracker.record(STATUS_SHED, 0.0)
        for _ in range(2):
            tracker.record(STATUS_ERROR, 0.001)
        health = tracker.snapshot()
        by_name = {c.name: c for c in health.checks}
        assert by_name["shed_rate"].observed == pytest.approx(0.2)
        assert by_name["error_rate"].observed == pytest.approx(0.2)
        assert health.healthy  # at the objective is still within it

    def test_window_forgets_old_outcomes(self):
        tracker, clock = self.make(max_error_rate=0.01)
        for _ in range(10):
            tracker.record(STATUS_ERROR, 0.001)
        assert not tracker.snapshot().healthy
        clock.now += 120.0  # the bad minute scrolls out of the window
        for _ in range(10):
            tracker.record(STATUS_OK, 0.001)
        health = tracker.snapshot()
        assert health.healthy
        assert health.samples == 10

    def test_sample_cap_bounds_memory(self):
        tracker, _clock = self.make(max_window_samples=8, min_samples=1)
        for _ in range(100):
            tracker.record(STATUS_OK, 0.001)
        assert tracker.snapshot().samples == 8


class TestServiceHealth:
    def test_healthy_under_gentle_load(self, ideal_dataset):
        config = ServiceConfig(
            workers=2,
            slo=SLOConfig(latency_p99_s=30.0, min_samples=1),
        )
        with MatchService.from_dataset(ideal_dataset, config) as service:
            targets = list(ideal_dataset.sample_targets(12, seed=1))
            report = run_load(
                service,
                targets,
                LoadConfig(num_clients=2, requests_per_client=6, seed=3),
            )
        assert report.final_health is not None
        assert report.final_health.healthy
        assert report.final_health.samples >= report.issued

    def test_overload_fails_the_shed_slo(self, ideal_dataset):
        # One slow worker, a one-deep queue, and a zero shed budget:
        # concurrent clients must shed, and the verdict must say so.
        config = ServiceConfig(
            workers=1,
            queue_size=1,
            max_batch=1,
            cache_capacity=0,
            worker_delay_s=0.05,
            slo=SLOConfig(max_shed_rate=0.0, min_samples=1),
        )
        with MatchService.from_dataset(ideal_dataset, config) as service:
            targets = list(ideal_dataset.sample_targets(12, seed=1))
            report = run_load(
                service,
                targets,
                LoadConfig(
                    num_clients=6,
                    requests_per_client=4,
                    pool_size=12,
                    seed=5,
                ),
            )
            health = service.health()
        assert report.shed > 0
        assert not health.healthy
        (shed,) = [c for c in health.checks if c.name == "shed_rate"]
        assert not shed.ok and shed.observed > 0.0
        assert report.final_health is not None
        assert not report.final_health.healthy

    def test_meta_traffic_does_not_count(self, ideal_dataset):
        config = ServiceConfig(workers=1, slo=SLOConfig(min_samples=1))
        with MatchService.from_dataset(ideal_dataset, config) as service:
            for _ in range(5):
                service.stats()
                service.metrics_text()
            assert service.health().samples == 0
            target = next(iter(ideal_dataset.sample_targets(1, seed=1)))
            service.submit(MatchRequest(targets=(target,))).result(timeout=60.0)
            assert service.health().samples == 1
