"""Tests for the E/V sensing models and scenario data types."""

import numpy as np
import pytest

from repro.sensing.e_sensing import ESensingConfig, ESensingModel
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.sensing.v_sensing import VSensingConfig, VSensingModel
from repro.world.entities import EID, VID
from repro.world.features import AppearanceModel
from repro.world.geometry import Point


class TestESensing:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ESensingConfig(drift_sigma=-1.0)
        with pytest.raises(ValueError):
            ESensingConfig(miss_rate=1.5)

    def test_noise_free_sensing_is_exact(self):
        model = ESensingModel()
        positions = {EID(0): Point(1, 2), EID(1): Point(3, 4)}
        sightings = model.sense(positions, tick=7, rng=np.random.default_rng(0))
        assert [s.eid for s in sightings] == [EID(0), EID(1)]
        assert sightings[0].observed_position == Point(1, 2)
        assert all(s.tick == 7 for s in sightings)

    def test_miss_rate_statistics(self):
        model = ESensingModel(ESensingConfig(miss_rate=0.5))
        positions = {EID(i): Point(0, 0) for i in range(1000)}
        sightings = model.sense(positions, 0, np.random.default_rng(1))
        assert 400 < len(sightings) < 600

    def test_drift_perturbs_positions(self):
        model = ESensingModel(ESensingConfig(drift_sigma=10.0))
        positions = {EID(i): Point(100, 100) for i in range(200)}
        sightings = model.sense(positions, 0, np.random.default_rng(2))
        errors = [
            s.observed_position.distance_to(Point(100, 100)) for s in sightings
        ]
        mean_err = sum(errors) / len(errors)
        # Rayleigh mean for sigma=10 is ~12.5 m.
        assert 9.0 < mean_err < 16.0

    def test_deterministic_given_rng(self):
        model = ESensingModel(ESensingConfig(drift_sigma=5.0, miss_rate=0.2))
        positions = {EID(i): Point(i, i) for i in range(50)}
        a = model.sense(positions, 0, np.random.default_rng(3))
        b = model.sense(positions, 0, np.random.default_rng(3))
        assert a == b


class TestVSensing:
    @pytest.fixture
    def appearance(self):
        return AppearanceModel(num_vids=20, seed=0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VSensingConfig(miss_rate=-0.1)

    def test_detects_everyone_without_misses(self, appearance):
        model = VSensingModel(appearance)
        detections = model.sense([VID(3), VID(1)], np.random.default_rng(0))
        assert [d.true_vid for d in detections] == [VID(1), VID(3)]

    def test_detection_ids_globally_unique(self, appearance):
        model = VSensingModel(appearance)
        rng = np.random.default_rng(1)
        ids = []
        for _ in range(5):
            ids.extend(d.detection_id for d in model.sense([VID(0), VID(1)], rng))
        assert len(ids) == len(set(ids))
        assert model.detections_issued == len(ids)

    def test_miss_rate_statistics(self, appearance):
        model = VSensingModel(appearance, VSensingConfig(miss_rate=0.3))
        rng = np.random.default_rng(2)
        detected = sum(
            len(model.sense(list(map(VID, range(20))), rng)) for _ in range(100)
        )
        assert 1200 < detected < 1600  # 2000 * 0.7 = 1400

    def test_features_unit_norm(self, appearance):
        model = VSensingModel(appearance)
        for d in model.sense([VID(i) for i in range(5)], np.random.default_rng(3)):
            assert np.linalg.norm(d.feature) == pytest.approx(1.0)


class TestScenarioTypes:
    def test_escenario_rejects_overlap(self):
        with pytest.raises(ValueError, match="inclusive and vague"):
            EScenario(
                key=ScenarioKey(0, 0),
                inclusive=frozenset({EID(1)}),
                vague=frozenset({EID(1)}),
            )

    def test_escenario_membership(self):
        s = EScenario(
            key=ScenarioKey(0, 0),
            inclusive=frozenset({EID(1)}),
            vague=frozenset({EID(2)}),
        )
        assert EID(1) in s and EID(2) in s and EID(3) not in s
        assert s.eids == frozenset({EID(1), EID(2)})
        assert len(s) == 2

    def test_detection_identity_semantics(self):
        f = np.ones(4) / 2.0
        a = Detection(detection_id=1, feature=f, true_vid=VID(0))
        b = Detection(detection_id=1, feature=f * 2, true_vid=VID(5))
        assert a == b  # identity is the detection id
        assert len({a, b}) == 1

    def test_vscenario_feature_matrix(self):
        f = np.ones(4) / 2.0
        v = VScenario(
            key=ScenarioKey(0, 0),
            detections=(
                Detection(0, f, VID(0)),
                Detection(1, f, VID(1)),
            ),
        )
        assert v.feature_matrix().shape == (2, 4)
        assert v.num_detections == 2

    def test_empty_vscenario_feature_matrix(self):
        v = VScenario(key=ScenarioKey(0, 0), detections=())
        assert v.feature_matrix().size == 0

    def test_evscenario_key_mismatch(self):
        e = EScenario(key=ScenarioKey(0, 0), inclusive=frozenset())
        v = VScenario(key=ScenarioKey(1, 0), detections=())
        with pytest.raises(ValueError, match="mismatched"):
            EVScenario(e=e, v=v)


class TestScenarioStore:
    def make_store(self):
        scenarios = []
        for cell in range(2):
            for tick in range(3):
                key = ScenarioKey(cell, tick)
                scenarios.append(
                    EVScenario(
                        e=EScenario(key=key, inclusive=frozenset({EID(cell)})),
                        v=VScenario(key=key, detections=()),
                    )
                )
        return ScenarioStore(scenarios)

    def test_indexing(self):
        store = self.make_store()
        assert len(store) == 6
        assert ScenarioKey(1, 2) in store
        assert store.get(ScenarioKey(1, 2)).key == ScenarioKey(1, 2)
        assert store.e_scenario(ScenarioKey(0, 0)).inclusive == frozenset({EID(0)})

    def test_duplicate_keys_rejected(self):
        s = self.make_store()
        key = ScenarioKey(0, 0)
        dup = EVScenario(
            e=EScenario(key=key, inclusive=frozenset()),
            v=VScenario(key=key, detections=()),
        )
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioStore([dup, dup])

    def test_missing_key_raises(self):
        store = self.make_store()
        with pytest.raises(KeyError):
            store.get(ScenarioKey(9, 9))

    def test_ticks_and_keys_at_tick(self):
        store = self.make_store()
        assert store.ticks == (0, 1, 2)
        assert store.keys_at_tick(1) == (ScenarioKey(0, 1), ScenarioKey(1, 1))
        assert store.keys_at_tick(99) == ()

    def test_keys_sorted(self):
        store = self.make_store()
        assert list(store.keys) == sorted(store.keys)

    def test_e_scenarios_iteration_order(self):
        store = self.make_store()
        keys = [s.key for s in store.e_scenarios()]
        assert keys == list(store.keys)

    def test_add_appends_and_indexes(self):
        store = self.make_store()
        key = ScenarioKey(0, 3)
        store.add(
            EVScenario(
                e=EScenario(key=key, inclusive=frozenset({EID(5)})),
                v=VScenario(key=key, detections=()),
            )
        )
        assert len(store) == 7
        assert key in store
        assert store.ticks == (0, 1, 2, 3)
        assert store.keys_at_tick(3) == (key,)
        assert list(store.keys) == sorted(store.keys)

    def test_add_rejects_duplicate_key(self):
        store = self.make_store()
        key = ScenarioKey(0, 0)
        dup = EVScenario(
            e=EScenario(key=key, inclusive=frozenset()),
            v=VScenario(key=key, detections=()),
        )
        with pytest.raises(ValueError, match="duplicate"):
            store.add(dup)
