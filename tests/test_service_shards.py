"""Tests for the region-banded dataset shards."""

import pytest

from repro.sensing.index import ScenarioIndex
from repro.service.dataset_shards import ShardedDataset, _band
from repro.world.entities import EID


class TestBanding:
    def test_bands_partition_cells(self):
        cells = list(range(11))
        bands = _band(cells, 4)
        assert len(bands) == 4
        flat = [c for band in bands for c in band]
        assert flat == cells  # contiguous, order-preserving
        sizes = [len(band) for band in bands]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_cells(self):
        assert _band([], 3) == [[], [], []]

    def test_invalid_shard_count(self, ideal_dataset):
        with pytest.raises(ValueError):
            ShardedDataset(ideal_dataset.store, num_shards=0)

    def test_shards_clamped_to_cell_count(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=100
        )
        assert sharded.num_shards == ideal_dataset.grid.num_cells


class TestTopology:
    def test_every_cell_routed_once(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=4
        )
        seen = {}
        for shard in sharded.shards:
            for cell_id in shard.cell_ids:
                assert cell_id not in seen, "cell assigned to two shards"
                seen[cell_id] = shard.shard_id
        for cell in ideal_dataset.grid.cells:
            assert sharded.shard_of_cell(cell.cell_id) is not None

    def test_all_scenarios_indexed(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=4
        )
        assert sum(sharded.balance().values()) == len(ideal_dataset.store)


class TestLookups:
    def test_scenarios_of_matches_monolithic_index(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=4
        )
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        for eid in ideal_dataset.sample_targets(15, seed=3):
            assert sharded.scenarios_of(eid) == index.scenarios_of(eid)

    def test_presence_windows_match_monolithic_index(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=4
        )
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        for eid in ideal_dataset.sample_targets(10, seed=4):
            assert sharded.presence_windows(eid) == index.presence_windows(eid)

    def test_lookup_probes_only_routed_shards(self, ideal_dataset):
        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=4
        )
        eid = ideal_dataset.sample_targets(1, seed=5)[0]
        before = sharded.shard_probes
        sharded.scenarios_of(eid)
        probed = sharded.shard_probes - before
        assert probed == len(sharded.shards_of_eid(eid))
        assert probed <= sharded.num_shards

    def test_unknown_eid(self, ideal_dataset):
        sharded = ShardedDataset(ideal_dataset.store, num_shards=2)
        ghost = EID(10**6)
        assert ghost not in sharded
        assert sharded.scenarios_of(ghost) == ()
        assert sharded.presence_windows(ghost) == []

    def test_co_travelers_counts_confident_cooccurrence(self, ideal_dataset):
        sharded = ShardedDataset(ideal_dataset.store, num_shards=3)
        eid = ideal_dataset.sample_targets(1, seed=6)[0]
        pairs = sharded.co_travelers(eid, min_shared=2)
        counts = {}
        for key in ideal_dataset.store.keys:
            e_scenario = ideal_dataset.store.e_scenario(key)
            if eid in e_scenario.inclusive:
                for other in e_scenario.inclusive:
                    if other != eid:
                        counts[other] = counts.get(other, 0) + 1
        expected = sorted(
            ((e, n) for e, n in counts.items() if n >= 2),
            key=lambda en: (-en[1], en[0]),
        )
        assert pairs == expected

    def test_min_shared_validated(self, ideal_dataset):
        sharded = ShardedDataset(ideal_dataset.store, num_shards=2)
        with pytest.raises(ValueError):
            sharded.co_travelers(EID(0), min_shared=0)


class TestIngestRouting:
    def test_add_scenario_updates_routing(self, ideal_dataset):
        store = ideal_dataset.store
        keys = list(store.keys)
        held_out = keys[-1]
        from repro.sensing.scenarios import ScenarioStore

        partial = ScenarioStore([store.get(k) for k in keys[:-1]])
        sharded = ShardedDataset(partial, ideal_dataset.grid, num_shards=4)
        scenario = store.get(held_out)
        shard_id = sharded.add_scenario(scenario)
        assert shard_id == sharded.shard_of_cell(held_out.cell_id)
        for eid in scenario.e.eids:
            assert shard_id in sharded.shards_of_eid(eid)
            assert held_out in sharded.scenarios_of(eid)

    def test_unseen_cell_assigned_round_robin(self, ideal_dataset):
        from repro.sensing.scenarios import (
            EScenario,
            EVScenario,
            ScenarioKey,
            VScenario,
        )

        sharded = ShardedDataset(
            ideal_dataset.store, ideal_dataset.grid, num_shards=3
        )
        new_cell = max(c.cell_id for c in ideal_dataset.grid.cells) + 5
        key = ScenarioKey(cell_id=new_cell, tick=0)
        eid = ideal_dataset.eids[0]
        scenario = EVScenario(
            e=EScenario(key=key, inclusive=frozenset([eid])),
            v=VScenario(key=key, detections=()),
        )
        shard_id = sharded.add_scenario(scenario)
        assert shard_id == new_cell % sharded.num_shards
        assert key in sharded.scenarios_of(eid)
