"""Tests for the fusion layer: trajectories, tracklets, fused index."""

import numpy as np
import pytest

from repro.core.matcher import EVMatcher
from repro.fusion.index import FusedIndex
from repro.fusion.trajectories import (
    ETrajectory,
    build_e_trajectories,
    build_v_tracklets,
)
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID, VID


def unit(*values):
    v = np.array(values, dtype=float)
    return v / np.linalg.norm(v)


def tiny_store():
    """Cell 0 over 3 ticks: person 1 present throughout, person 2 joins
    at tick 1; person 1 is vague at tick 2."""
    f1, f2 = unit(1, 0, 0), unit(0, 1, 0)
    scenarios = []
    spec = [
        (0, [(1, f1)], []),
        (1, [(1, f1), (2, f2)], []),
        (2, [(2, f2)], [(1, f1)]),
    ]
    det_id = 0
    for tick, present, vague in spec:
        key = ScenarioKey(cell_id=0, tick=tick)
        detections = []
        for vid_index, feature in present + vague:
            detections.append(
                Detection(det_id, feature, VID(vid_index))
            )
            det_id += 1
        scenarios.append(
            EVScenario(
                e=EScenario(
                    key=key,
                    inclusive=frozenset(EID(i) for i, _f in present),
                    vague=frozenset(EID(i) for i, _f in vague),
                ),
                v=VScenario(key=key, detections=tuple(detections)),
            )
        )
    return ScenarioStore(scenarios)


class TestETrajectories:
    def test_build_from_store(self):
        trajectories = build_e_trajectories(tiny_store())
        t1 = trajectories[EID(1)]
        assert t1.sightings == ((0, 0, False), (1, 0, False), (2, 0, True))
        assert trajectories[EID(2)].sightings == ((1, 0, False), (2, 0, False))

    def test_cell_at_ignores_vague(self):
        trajectories = build_e_trajectories(tiny_store())
        t1 = trajectories[EID(1)]
        assert t1.cell_at(0) == 0
        assert t1.cell_at(2) is None  # vague sighting untrusted

    def test_cells_visited(self):
        t = ETrajectory(
            eid=EID(0),
            sightings=((0, 3, False), (1, 3, False), (2, 5, False), (3, 3, True)),
        )
        assert t.cells_visited() == (3, 5)


class TestVTracklets:
    def test_links_same_person_across_ticks(self):
        tracklets = build_v_tracklets(tiny_store(), link_threshold=0.6)
        # Person 1 spans ticks 0-2 in cell 0, person 2 spans 1-2.
        by_identity = {}
        for t in tracklets:
            vid = t.detections[0][1].true_vid
            by_identity.setdefault(vid, []).append(t)
        assert len(by_identity[VID(1)]) == 1
        assert len(by_identity[VID(1)][0]) == 3
        assert len(by_identity[VID(2)][0]) == 2

    def test_purity_perfect_on_clean_features(self):
        for tracklet in build_v_tracklets(tiny_store()):
            assert tracklet.purity() == 1.0

    def test_threshold_breaks_links(self):
        # Same person, slightly different looks per window: a strict
        # threshold refuses the link, a lenient one takes it.
        looks = [unit(1, 0.1 * i, 0) for i in range(3)]
        scenarios = []
        for tick, feature in enumerate(looks):
            key = ScenarioKey(cell_id=0, tick=tick)
            scenarios.append(
                EVScenario(
                    e=EScenario(key=key, inclusive=frozenset({EID(1)})),
                    v=VScenario(
                        key=key, detections=(Detection(tick, feature, VID(1)),)
                    ),
                )
            )
        store = ScenarioStore(scenarios)
        strict = build_v_tracklets(store, link_threshold=0.99)
        lenient = build_v_tracklets(store, link_threshold=0.6)
        assert all(len(t) == 1 for t in strict)
        assert max(len(t) for t in lenient) == 3

    def test_invalid_parameters(self):
        store = tiny_store()
        with pytest.raises(ValueError):
            build_v_tracklets(store, link_threshold=0.0)
        with pytest.raises(ValueError):
            build_v_tracklets(store, max_gap=-1)

    def test_gap_tolerance(self):
        """A person missed in one window reconnects with max_gap=1."""
        f1 = unit(1, 0, 0)
        scenarios = []
        det_id = 0
        for tick, present in ((0, True), (1, False), (2, True)):
            key = ScenarioKey(cell_id=0, tick=tick)
            detections = ()
            if present:
                detections = (Detection(det_id, f1, VID(1)),)
                det_id += 1
            scenarios.append(
                EVScenario(
                    e=EScenario(key=key, inclusive=frozenset({EID(1)})),
                    v=VScenario(key=key, detections=detections),
                )
            )
        store = ScenarioStore(scenarios)
        with_gap = build_v_tracklets(store, max_gap=1)
        without_gap = build_v_tracklets(store, max_gap=0)
        assert max(len(t) for t in with_gap) == 2
        assert max(len(t) for t in without_gap) == 1

    def test_tracklets_on_real_world(self, ideal_dataset):
        tracklets = build_v_tracklets(ideal_dataset.store)
        long_ones = [t for t in tracklets if len(t) >= 3]
        assert long_ones, "a real world must produce multi-window tracklets"
        purity = sum(t.purity() for t in long_ones) / len(long_ones)
        assert purity >= 0.95


class TestFusedIndex:
    @pytest.fixture(scope="class")
    def index(self, ideal_dataset):
        report = EVMatcher(ideal_dataset.store).match_universal()
        return FusedIndex(ideal_dataset.store, report)

    def test_profiles_cover_universe(self, index, ideal_dataset):
        assert index.num_profiles == len(ideal_dataset.eids)

    def test_profile_has_both_sides(self, index):
        eid = index.eids[0]
        profile = index.profile(eid)
        assert profile.e_trajectory is not None
        assert profile.centroid is not None
        assert profile.num_appearances > 0

    def test_unknown_eid_raises(self, index):
        with pytest.raises(KeyError):
            index.profile(EID(10**6))

    def test_attribution_mostly_correct(self, index, ideal_dataset):
        assert index.attribution_accuracy(ideal_dataset.truth) >= 0.9

    def test_identify_detection_roundtrip(self, index):
        eid = index.eids[3]
        appearances = index.appearances_of(eid)
        assert appearances
        _key, detection = appearances[0]
        assert index.identify_detection(detection.detection_id) == eid
        assert index.identify_detection(10**9) is None

    def test_who_was_at_consistency(self, index, ideal_dataset):
        key = ideal_dataset.store.keys[len(ideal_dataset.store) // 2]
        electronic, visual = index.who_was_at(key.cell_id, key.tick)
        assert electronic, "an occupied scenario must have electronic presence"
        overlap = set(electronic) & set(visual)
        # Fused sides must largely agree on who was there.
        assert len(overlap) >= 0.7 * len(visual)

    def test_who_was_at_missing_scenario(self, index):
        assert index.who_was_at(10**6, 10**6) == ([], [])

    def test_co_travelers(self, index):
        eid = index.eids[0]
        pairs = index.co_travelers(eid, min_shared=2)
        for other, shared in pairs:
            assert other != eid
            assert shared >= 2
        counts = [n for _e, n in pairs]
        assert counts == sorted(counts, reverse=True)
        with pytest.raises(ValueError):
            index.co_travelers(eid, min_shared=0)

    def test_invalid_threshold(self, ideal_dataset):
        report = EVMatcher(ideal_dataset.store).match_universal()
        with pytest.raises(ValueError):
            FusedIndex(ideal_dataset.store, report, attribution_threshold=1.0)


class TestSmoothing:
    def test_invalid_blend(self, ideal_dataset):
        from repro.fusion.smoothing import smooth_store

        with pytest.raises(ValueError):
            smooth_store(ideal_dataset.store, blend=1.5)

    def test_structure_preserved(self, ideal_dataset):
        from repro.fusion.smoothing import smooth_store

        smoothed = smooth_store(ideal_dataset.store)
        assert smoothed.keys == ideal_dataset.store.keys
        for key in ideal_dataset.store.keys:
            original = ideal_dataset.store.get(key)
            copy = smoothed.get(key)
            assert copy.e.inclusive == original.e.inclusive
            assert [d.detection_id for d in copy.v.detections] == [
                d.detection_id for d in original.v.detections
            ]

    def test_blend_zero_keeps_features(self, ideal_dataset):
        from repro.fusion.smoothing import smooth_store

        smoothed = smooth_store(ideal_dataset.store, blend=0.0)
        key = ideal_dataset.store.keys[0]
        np.testing.assert_allclose(
            smoothed.get(key).v.feature_matrix(),
            ideal_dataset.store.get(key).v.feature_matrix(),
        )

    def test_features_stay_unit_norm(self, ideal_dataset):
        from repro.fusion.smoothing import smooth_store

        smoothed = smooth_store(ideal_dataset.store)
        key = ideal_dataset.store.keys[0]
        norms = np.linalg.norm(smoothed.get(key).v.feature_matrix(), axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_smoothing_does_not_hurt_matching(self, ideal_dataset):
        from repro.fusion.smoothing import smooth_store

        targets = list(ideal_dataset.sample_targets(40, seed=7))
        raw = EVMatcher(ideal_dataset.store).match(targets)
        smoothed = EVMatcher(smooth_store(ideal_dataset.store)).match(targets)
        assert (
            smoothed.score(ideal_dataset.truth).accuracy
            >= raw.score(ideal_dataset.truth).accuracy - 0.03
        )
