"""Tests for identity types (EID, VID, Person)."""

import pytest

from repro.world.entities import EID, Person, VID


class TestEID:
    def test_ordering_by_index(self):
        assert EID(1) < EID(2)
        assert sorted([EID(3), EID(1), EID(2)]) == [EID(1), EID(2), EID(3)]

    def test_hashable_and_equal(self):
        assert EID(7) == EID(7)
        assert len({EID(7), EID(7), EID(8)}) == 2

    def test_mac_format(self):
        mac = EID(0).mac
        assert mac == "02:00:00:00:00:00"
        assert EID(255).mac == "02:00:00:00:00:ff"
        assert EID(256).mac == "02:00:00:00:01:00"

    def test_mac_locally_administered_prefix(self):
        assert EID(123456).mac.startswith("02:")

    def test_mac_out_of_range(self):
        with pytest.raises(ValueError):
            _ = EID(2**40).mac

    def test_str(self):
        assert str(EID(5)) == "EID#5"


class TestVID:
    def test_ordering(self):
        assert VID(0) < VID(1)

    def test_str(self):
        assert str(VID(9)) == "VID#9"

    def test_distinct_from_eid(self):
        # EID(3) and VID(3) must never compare equal or hash-collide
        # into "the same identity" in mixed sets.
        mixed = {EID(3), VID(3)}
        assert len(mixed) == 2


class TestPerson:
    def test_has_device(self):
        with_device = Person(person_id=0, eid=EID(0), vid=VID(0))
        without = Person(person_id=1, eid=None, vid=VID(1))
        assert with_device.has_device
        assert not without.has_device

    def test_str_mentions_identities(self):
        p = Person(person_id=2, eid=EID(2), vid=VID(2))
        assert "EID#2" in str(p) and "VID#2" in str(p)
        q = Person(person_id=3, eid=None, vid=VID(3))
        assert "no-EID" in str(q)
