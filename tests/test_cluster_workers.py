"""Supervisor recovery tests: real worker processes, real crashes.

These tests spawn actual ``multiprocessing`` worker processes, kill
them mid-load, and assert the three promises of the supervision layer:

* with ``replication >= 2`` a killed worker never fails a query;
* a lost worker is restarted with capped exponential backoff and
  rebuilds its state (journal replay + router ingest re-offer);
* the event log tells the honest availability story —
  ``cluster.health.degraded`` on first loss, ``cluster.health.ok``
  only when the whole fleet serves again.
"""

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List

import pytest

from repro.cluster import (
    ClusterRouter,
    Supervisor,
    SupervisorConfig,
    WorkerSpec,
)
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import EVDataset, build_dataset
from repro.datagen.io import save_dataset
from repro.obs import EventLog, get_registry, set_event_log
from repro.sensing.scenarios import ScenarioStore
from repro.service.api import STATUS_OK
from repro.service.server import ServiceConfig


@dataclass
class ClusterWorld:
    """A saved standing world plus held-back arriving scenarios."""

    path: Path
    dataset: EVDataset
    arriving: list
    targets: list


@pytest.fixture(scope="module")
def cluster_world(tmp_path_factory) -> ClusterWorld:
    config = ExperimentConfig(
        num_people=60,
        cells_per_side=3,
        duration=400.0,
        sample_dt=10.0,
        warmup=100.0,
        feature_dimension=16,
        seed=7,
    )
    dataset = build_dataset(config)
    full = dataset.store
    ticks = list(full.ticks)
    cutoff = ticks[int(len(ticks) * 0.7)]
    standing = ScenarioStore(
        [full.get(k) for k in full.keys if k.tick <= cutoff]
    )
    arriving = [full.get(k) for k in full.keys if k.tick > cutoff]
    standing_dataset = EVDataset(
        config=config,
        population=dataset.population,
        grid=dataset.grid,
        traces=None,
        store=standing,
    )
    path = save_dataset(
        standing_dataset, tmp_path_factory.mktemp("world") / "world.npz"
    )
    return ClusterWorld(
        path=path,
        dataset=dataset,
        arriving=arriving,
        targets=list(dataset.sample_targets(3, seed=1)),
    )


def make_specs(
    world: ClusterWorld, journal_dir: Path, count: int = 2
) -> List[WorkerSpec]:
    return [
        WorkerSpec(
            worker_id=f"w{i}",
            dataset_path=str(world.path),
            journal_path=str(journal_dir / f"w{i}.journal.jsonl"),
            service=ServiceConfig(workers=2, queue_size=64),
        )
        for i in range(count)
    ]


@pytest.fixture()
def event_log():
    log = EventLog()
    previous = set_event_log(log)
    yield log
    set_event_log(previous)


@pytest.fixture()
def fleet(cluster_world, tmp_path, event_log):
    supervisor = Supervisor(
        make_specs(cluster_world, tmp_path),
        SupervisorConfig(ready_timeout_s=120.0),
    ).start()
    router = ClusterRouter(supervisor, replication=2, read_policy="first")
    yield supervisor, router
    supervisor.stop()


def match_message(world: ClusterWorld) -> dict:
    return {
        "verb": "match",
        "targets": [eid.index for eid in world.targets],
        "algorithm": "ss",
    }


def ingest_message(world: ClusterWorld, count: int) -> dict:
    from repro.stream.checkpoint import scenario_to_json

    return {
        "verb": "ingest",
        "scenarios": [scenario_to_json(s) for s in world.arriving[:count]],
    }


class TestSpecValidation:
    def test_needs_exactly_one_world_source(self, cluster_world):
        with pytest.raises(ValueError):
            WorkerSpec(worker_id="w0", journal_path="j.jsonl")
        with pytest.raises(ValueError):
            WorkerSpec(
                worker_id="w0",
                config=cluster_world.dataset.config,
                dataset_path=str(cluster_world.path),
                journal_path="j.jsonl",
            )

    def test_supervisor_rejects_duplicate_ids(self, cluster_world, tmp_path):
        specs = make_specs(cluster_world, tmp_path, count=1) * 2
        with pytest.raises(ValueError):
            Supervisor(specs)

    def test_supervisor_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            Supervisor([])


class TestBackoffSchedule:
    def test_exponential_and_capped(self, cluster_world, tmp_path):
        from repro.cluster.supervisor import WorkerHandle

        config = SupervisorConfig(backoff_base_s=0.2, backoff_cap_s=1.0)
        handle = WorkerHandle(
            make_specs(cluster_world, tmp_path, count=1)[0], config
        )
        delays = [handle.mark_down() for _ in range(5)]
        assert delays == [
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
            pytest.approx(1.0),  # capped
            pytest.approx(1.0),
        ]
        assert handle.restarts == 5


class TestCrashRecovery:
    def test_kill_mid_load_loses_no_query_and_rebuilds_state(
        self, cluster_world, fleet, event_log
    ):
        supervisor, router = fleet
        crashes_before = (
            get_registry()
            .counter(
                "ev_cluster_worker_crashes_total",
                "Worker processes lost (crash or hang), by worker",
            )
            .total()
        )

        # Seed live state first so the restart has something to rebuild.
        ingest = router.dispatch(ingest_message(cluster_world, 5))
        assert ingest["status"] == STATUS_OK
        assert ingest["ingested"] == 5
        assert ingest["workers_acked"] == 2

        victim = supervisor.worker("w0")
        pid_before = victim.pid
        victim.kill()

        # Drive queries through the outage; with replication=2 every
        # one must succeed.  Wait for the monitor to *detect* the loss
        # before trusting an all-available check (the poll loop needs a
        # beat to notice the corpse).
        detected = recovered = False
        answered = 0
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            response = router.dispatch(match_message(cluster_world))
            assert response["status"] == STATUS_OK, response
            answered += 1
            if not detected:
                detected = len(supervisor.available()) < 2
            elif (
                len(supervisor.available()) == 2
                and supervisor.worker("w0").pid != pid_before
            ):
                recovered = True
                break
            time.sleep(0.05)

        assert detected, "monitor never noticed the kill"
        assert recovered, supervisor.describe()
        assert answered > 0

        restarted = supervisor.worker("w0")
        assert restarted.restarts == 1
        # State rebuild: the journal replayed the 5 ingested scenarios.
        assert restarted.reloaded == 5
        # The rebuilt worker answers with the same store size as w1.
        stats0 = restarted.request({"verb": "stats"})
        stats1 = supervisor.worker("w1").request({"verb": "stats"})
        assert (
            stats0["snapshot"]["service"]["store_scenarios"]
            == stats1["snapshot"]["service"]["store_scenarios"]
        )

        crashes_after = (
            get_registry()
            .counter(
                "ev_cluster_worker_crashes_total",
                "Worker processes lost (crash or hang), by worker",
            )
            .total()
        )
        assert crashes_after == crashes_before + 1

        # The honest availability story, in order.
        types = [event["type"] for event in event_log.events()]
        for expected in (
            "cluster.worker.crashed",
            "cluster.health.degraded",
            "cluster.worker.restarted",
        ):
            assert expected in types, (expected, types)
        assert types.index("cluster.worker.crashed") < types.index(
            "cluster.worker.restarted"
        )
        # health.ok lands within the next couple monitor polls
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            types = [event["type"] for event in event_log.events()]
            if "cluster.health.ok" in types:
                break
            time.sleep(0.05)
        assert "cluster.health.ok" in types
        assert types.index("cluster.health.degraded") < types.index(
            "cluster.health.ok"
        )
        restarted_event = next(
            event
            for event in event_log.events()
            if event["type"] == "cluster.worker.restarted"
        )
        # First restart is scheduled after one backoff_base_s delay.
        assert restarted_event["fields"]["backoff_s"] == pytest.approx(0.2)

    def test_hung_worker_is_killed_and_restarted(
        self, cluster_world, tmp_path, event_log
    ):
        supervisor = Supervisor(
            make_specs(cluster_world, tmp_path),
            SupervisorConfig(heartbeat_timeout_s=1.0, ready_timeout_s=120.0),
        ).start()
        router = ClusterRouter(supervisor, replication=2)
        try:
            victim = supervisor.worker("w1")
            pid_before = victim.pid
            os.kill(pid_before, signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    response = router.dispatch(match_message(cluster_world))
                    assert response["status"] == STATUS_OK, response
                    types = [e["type"] for e in event_log.events()]
                    if (
                        "cluster.worker.hung" in types
                        and supervisor.worker("w1").pid != pid_before
                        and len(supervisor.available()) == 2
                    ):
                        break
                    time.sleep(0.1)
            finally:
                # the supervisor SIGKILLs the stopped process; make sure
                # it cannot linger if the assertion path changes
                try:
                    os.kill(pid_before, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            types = [e["type"] for e in event_log.events()]
            assert "cluster.worker.hung" in types, types
            assert supervisor.worker("w1").pid != pid_before
            assert len(supervisor.available()) == 2, supervisor.describe()
        finally:
            supervisor.stop()

    def test_restarted_worker_catches_up_on_missed_ingests(
        self, cluster_world, fleet, event_log
    ):
        supervisor, router = fleet
        victim = supervisor.worker("w0")
        pid_before = victim.pid
        victim.kill()

        # Wait for loss detection, then ingest while w0 is down.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if len(supervisor.available()) < 2:
                break
            time.sleep(0.02)
        assert len(supervisor.available()) < 2

        ingest = router.dispatch(ingest_message(cluster_world, 4))
        assert ingest["status"] == STATUS_OK
        assert ingest["workers_acked"] == 1  # only w1 heard it

        # On restart the router's on_worker_ready hook replays the log.
        deadline = time.monotonic() + 60.0
        replayed = None
        while time.monotonic() < deadline:
            replayed = next(
                (
                    event
                    for event in event_log.events()
                    if event["type"] == "cluster.ingest.replayed"
                ),
                None,
            )
            if replayed is not None:
                break
            time.sleep(0.05)
        assert replayed is not None, [e["type"] for e in event_log.events()]
        assert replayed["fields"]["worker"] == "w0"
        assert replayed["fields"]["offered"] == 4
        assert replayed["fields"]["applied"] == 4  # w0 never saw them: fresh
        assert supervisor.worker("w0").pid != pid_before

        stats0 = supervisor.worker("w0").request({"verb": "stats"})
        stats1 = supervisor.worker("w1").request({"verb": "stats"})
        assert (
            stats0["snapshot"]["service"]["store_scenarios"]
            == stats1["snapshot"]["service"]["store_scenarios"]
        )


class TestWorkerBackendChoice:
    """Each worker picks the fastest kernel backend at startup and
    reports it (``ready`` control message, ``stats`` verb)."""

    def test_default_spec_upgrades_to_fastest_backend(
        self, cluster_world, tmp_path
    ):
        from repro.cluster.worker import _pick_backend
        from repro.core.accel import best_available_backend

        spec = make_specs(cluster_world, tmp_path, count=1)[0]
        service_config, backend = _pick_backend(spec)
        assert backend == best_available_backend()
        assert service_config.matcher.split.backend == backend
        assert service_config.matcher.edp.backend == backend

    def test_explicit_pin_is_respected(self, cluster_world, tmp_path):
        from repro.cluster.worker import _pick_backend
        from repro.core.edp import EDPConfig
        from repro.core.matcher import MatcherConfig
        from repro.core.set_splitting import SplitConfig

        spec = make_specs(cluster_world, tmp_path, count=1)[0]
        pinned = WorkerSpec(
            worker_id=spec.worker_id,
            dataset_path=spec.dataset_path,
            service=ServiceConfig(
                matcher=MatcherConfig(
                    split=SplitConfig(backend="bitset"),
                    edp=EDPConfig(backend="bitset"),
                )
            ),
        )
        service_config, backend = _pick_backend(pinned)
        assert backend == "bitset"
        assert service_config is pinned.service  # untouched, not rebuilt

    def test_stats_verb_reports_backend(self, fleet):
        from repro.core.accel import best_available_backend

        supervisor, _router = fleet
        stats = supervisor.worker("w0").request({"verb": "stats"})
        assert stats["backend"] == best_available_backend()
