"""Integration tests for the distributed observability plane.

One real 2-process fleet behind a gateway, with tracing and the event
log enabled end to end.  These are the ISSUE's acceptance demos:

* one merged Chrome trace per cluster request, gateway + worker spans
  under a single ``trace_id``;
* the ``metrics`` verb serves worker-labelled federated series from
  every live worker, and federated counters survive a kill+restart
  (delta re-basing);
* the SSE ``events`` verb streams worker-originated flight-recorder
  events, correlated by worker id;
* the ``profile`` verb merges per-worker sampling profiles into one
  collapsed/speedscope document spanning >= 2 worker processes;
* the ``slowlog`` verb merges worker slow-query exemplars, slowest
  first, tagged with the originating worker.
"""

import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterGateway,
    ClusterRouter,
    GatewayClient,
    Supervisor,
    SupervisorConfig,
    WorkerSpec,
)
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import EVDataset, build_dataset
from repro.datagen.io import save_dataset
from repro.obs import EventLog, MetricsRegistry, set_event_log, set_registry
from repro.obs.slowlog import SlowLogConfig
from repro.obs.tracing import Tracer, set_tracer
from repro.sensing.scenarios import ScenarioStore
from repro.service.api import STATUS_OK
from repro.service.server import ServiceConfig

#: Workers beat telemetry fast so polling tests stay quick.
TELEMETRY_INTERVAL_S = 0.25


@dataclass
class ObsStack:
    supervisor: Supervisor
    router: ClusterRouter
    gateway: ClusterGateway
    dataset: EVDataset
    log: EventLog


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    log = EventLog()
    previous_log = set_event_log(log)
    previous_tracer = set_tracer(Tracer())
    # Fresh registry: earlier test modules' fleets leave worker-labelled
    # gateway counters behind, which would satisfy the federation waits
    # before this fleet's first snapshot lands.
    previous_registry = set_registry(MetricsRegistry())
    config = ExperimentConfig(
        num_people=60,
        cells_per_side=3,
        duration=400.0,
        sample_dt=10.0,
        warmup=100.0,
        feature_dimension=16,
        seed=11,
    )
    dataset = build_dataset(config)
    full = dataset.store
    ticks = list(full.ticks)
    cutoff = ticks[int(len(ticks) * 0.7)]
    standing = ScenarioStore(
        [full.get(k) for k in full.keys if k.tick <= cutoff]
    )
    workdir: Path = tmp_path_factory.mktemp("obs-world")
    path = save_dataset(
        EVDataset(
            config=config,
            population=dataset.population,
            grid=dataset.grid,
            traces=None,
            store=standing,
        ),
        workdir / "world.npz",
    )
    supervisor = Supervisor(
        [
            WorkerSpec(
                worker_id=f"w{i}",
                dataset_path=str(path),
                journal_path=str(workdir / f"w{i}.journal.jsonl"),
                service=ServiceConfig(
                    workers=2,
                    queue_size=64,
                    # A small artificial service time plus a tiny fixed
                    # slowlog threshold: every request becomes a
                    # slow-query exemplar, so the slowlog verb has
                    # records to merge.
                    worker_delay_s=0.005,
                    slowlog=SlowLogConfig(threshold_s=0.001),
                ),
                telemetry_interval_s=TELEMETRY_INTERVAL_S,
                # Sample fast so profile samples land within a short
                # polling window.
                profile_hz=200.0,
            )
            for i in range(2)
        ],
        SupervisorConfig(ready_timeout_s=120.0),
    ).start()
    router = ClusterRouter(supervisor, replication=2, read_policy="first")
    gateway = ClusterGateway(router, supervisor).start()
    yield ObsStack(
        supervisor=supervisor,
        router=router,
        gateway=gateway,
        dataset=dataset,
        log=log,
    )
    gateway.drain(timeout=5.0)
    supervisor.stop()
    set_event_log(previous_log)
    set_tracer(previous_tracer)
    set_registry(previous_registry)


@pytest.fixture()
def client(stack):
    with GatewayClient(stack.gateway.host, stack.gateway.port) as c:
        yield c


def match_message(stack: ObsStack, seed: int) -> dict:
    targets = stack.dataset.sample_targets(
        min(3, len(stack.dataset.eids)), seed=seed
    )
    return {
        "verb": "match",
        "targets": [eid.index for eid in targets],
        "algorithm": "ss",
    }


def federated_total(text: str, family: str, worker: str = "") -> float:
    """Sum one family's samples in an exposition, optionally for one
    worker label."""
    total = 0.0
    for line in text.splitlines():
        if not line.startswith(family + "{"):
            continue
        if worker and f'worker="{worker}"' not in line:
            continue
        total += float(line.rsplit(" ", 1)[1])
    return total


class TestMergedTrace:
    def test_one_request_yields_one_cross_process_trace(self, stack, client):
        response = client.call(match_message(stack, seed=21))
        assert response["status"] == STATUS_OK
        trace_id = response["trace_id"]
        assert trace_id
        assert "spans" not in response  # harvested by the router

        merged = client.merged_trace(trace_id)
        chrome = merged["chrome"]
        assert merged["trace_id"] == trace_id
        assert chrome["otherData"]["trace_id"] == trace_id

        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"gateway.request", "cluster.request", "worker.request"} \
            <= names
        assert "service.execute" in names
        # Spans from at least two processes (gateway + a worker) ...
        assert len({e["pid"] for e in spans}) >= 2
        # ... all under the single trace id ...
        assert {e["args"]["trace_id"] for e in spans} == {trace_id}
        # ... forming one tree: every non-root parent id resolves.
        ids = {e["args"]["span_id"] for e in spans}
        roots = [e for e in spans if e["args"]["parent_span_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "gateway.request"
        for event in spans:
            parent = event["args"]["parent_span_id"]
            assert parent is None or parent in ids
        # Process metadata names the gateway and the worker.
        labels = {
            e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M"
        }
        assert "gateway" in labels
        assert any(label.startswith("worker w") for label in labels)

    def test_each_request_gets_its_own_trace(self, stack, client):
        first = client.call(match_message(stack, seed=22))
        second = client.call(match_message(stack, seed=23))
        assert first["trace_id"] != second["trace_id"]
        assert (
            client.merged_trace(first["trace_id"])["trace_id"]
            == first["trace_id"]
        )


class TestMetricsFederationLive:
    def wait_for_workers_in_exposition(self, client, deadline_s=30.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            text = client.metrics_text()
            if 'worker="w0"' in text and 'worker="w1"' in text:
                return text
            time.sleep(TELEMETRY_INTERVAL_S)
        pytest.fail("worker-labelled series never appeared in /metrics")

    def test_exposition_is_worker_labelled_and_header_deduped(
        self, stack, client
    ):
        assert client.call(match_message(stack, seed=31))["status"] == STATUS_OK
        text = self.wait_for_workers_in_exposition(client)
        # Worker-side families arrive labelled; gateway families stay.
        assert "ev_cluster_gateway_requests_total" in text
        assert federated_total(text, "service_requests_total") > 0
        helps = re.findall(r"# HELP (\S+)", text)
        assert len(helps) == len(set(helps)), sorted(
            h for h in helps if helps.count(h) > 1
        )

    def test_counters_survive_worker_restart(self, stack, client):
        # Establish telemetry from both workers, then some traffic.
        for seed in (41, 42, 43):
            assert (
                client.call(match_message(stack, seed=seed))["status"]
                == STATUS_OK
            )
        text = self.wait_for_workers_in_exposition(client)
        deadline = time.monotonic() + 30.0
        while federated_total(text, "service_requests_total") <= 0:
            assert time.monotonic() < deadline, "no requests federated"
            time.sleep(TELEMETRY_INTERVAL_S)
            text = client.metrics_text()
        before_total = federated_total(text, "service_requests_total")

        victim = stack.supervisor.worker("w0")
        pid_before = victim.pid
        victim.kill()
        # Wait for the supervisor to restart it and for the new
        # generation's first telemetry beat to land.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            stats = client.stats()
            summary = stats["telemetry"]["workers"].get("w0", {})
            if (
                stats["workers"]["w0"]["state"] == "ready"
                and stats["workers"]["w0"]["pid"] != pid_before
                and summary.get("pid") == stats["workers"]["w0"]["pid"]
            ):
                break
            time.sleep(TELEMETRY_INTERVAL_S)
        else:
            pytest.fail("restarted worker never re-reported telemetry")

        # Delta re-basing: the fresh process restarted its counters at
        # zero, but the federated view must never go backward.
        text = client.metrics_text()
        assert 'worker="w0"' in text
        after_total = federated_total(text, "service_requests_total")
        assert after_total >= before_total
        # And new traffic keeps the federated counter rising.
        assert client.call(match_message(stack, seed=44))["status"] == STATUS_OK
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            grown = federated_total(
                client.metrics_text(), "service_requests_total"
            )
            if grown > after_total:
                break
            time.sleep(TELEMETRY_INTERVAL_S)
        else:
            pytest.fail("federated counter never advanced after restart")


class TestClusterEventStream:
    def test_sse_streams_worker_originated_events(self, stack, client):
        received = []

        def tail():
            with GatewayClient(
                stack.gateway.host, stack.gateway.port
            ) as tail_client:
                for event_type, event in tail_client.stream_events(
                    types=["match.provenance"],
                    max_events=1,
                    timeout_s=60.0,
                ):
                    received.append((event_type, event))

        thread = threading.Thread(target=tail)
        thread.start()
        time.sleep(0.5)  # let the subscriber pass the backlog
        # A fresh (uncached) match makes a worker emit provenance
        # events; the next beat ships them to the gateway's log.
        response = client.call(match_message(stack, seed=51))
        assert response["status"] == STATUS_OK
        thread.join(timeout=60.0)
        assert received, "no worker event reached the SSE stream"
        event_type, event = received[0]
        assert event_type == "match.provenance"
        assert event["fields"]["worker"] in {"w0", "w1"}
        assert event.get("origin_seq") is not None

    def test_cluster_profile_spans_at_least_two_workers(self, stack, client):
        """Acceptance demo: the ``profile`` verb returns one merged
        flamegraph whose stacks come from >= 2 worker processes."""
        deadline = time.monotonic() + 30.0
        seed = 61
        while True:
            # Keep the workers busy so the 200 Hz samplers land stacks.
            for _ in range(4):
                seed += 1
                assert (
                    client.call(match_message(stack, seed=seed))["status"]
                    == STATUS_OK
                )
            profile = client.merged_profile()
            sampled = [
                worker_id
                for worker_id in profile["workers"]
                if f"worker={worker_id};" in profile["collapsed"]
            ]
            if len(sampled) >= 2:
                break
            assert time.monotonic() < deadline, (
                f"merged profile never spanned 2 workers; "
                f"sampled={sampled} samples={profile['samples']}"
            )
            time.sleep(0.2)

        assert profile["status"] == STATUS_OK
        assert {"w0", "w1"} <= set(profile["workers"])
        assert profile["samples"] > 0
        # Every collapsed line is worker-rooted with a positive count.
        for line in profile["collapsed"].splitlines():
            stack_part, _, count = line.rpartition(" ")
            assert stack_part.startswith("worker=")
            assert int(count) > 0
        # The speedscope document carries one profile per worker, all
        # indexing one shared frame table.
        doc = profile["speedscope"]
        names = {p["name"] for p in doc["profiles"]}
        assert len(names) == len(doc["profiles"]) >= 2
        frames = doc["shared"]["frames"]
        for worker_profile in doc["profiles"]:
            for sample in worker_profile["samples"]:
                assert all(0 <= i < len(frames) for i in sample)

    def test_cluster_slowlog_merges_worker_exemplars(self, stack, client):
        for seed in (71, 72, 73):
            assert (
                client.call(match_message(stack, seed=seed))["status"]
                == STATUS_OK
            )
        payload = client.slowlog(limit=8)
        assert payload["status"] == STATUS_OK
        # Per-worker policy envelopes (records stripped).
        assert {"w0", "w1"} <= set(payload["workers"])
        for summary in payload["workers"].values():
            assert summary["mode"] == "fixed"
            assert summary["threshold_s"] == pytest.approx(0.001)
            assert "records" not in summary
        # The fixture's worker_delay_s guarantees every request was an
        # exemplar; merged records arrive slowest-first, worker-tagged.
        records = payload["records"]
        assert records
        assert len(records) <= 8
        latencies = [r["latency_s"] for r in records]
        assert latencies == sorted(latencies, reverse=True)
        for record in records:
            assert record["worker"] in {"w0", "w1"}
            assert record["endpoint"] == "match"
            assert record["latency_s"] >= record["threshold_s"]
            assert record["trace_id"]  # joins against merged traces
            assert record["backend_label"]
            assert record["spans"]["name"] == "service.execute"

    def test_stats_exposes_per_worker_telemetry_summaries(
        self, stack, client
    ):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            telemetry = client.stats()["telemetry"]
            workers = telemetry["workers"]
            if {"w0", "w1"} <= set(workers):
                break
            time.sleep(TELEMETRY_INTERVAL_S)
        else:
            pytest.fail("telemetry summaries never covered the fleet")
        for summary in workers.values():
            assert summary["backend"]
            assert summary["lag_s"] < 30.0
            assert "p99_ms" in summary
