"""Cross-module property tests: invariants over randomly generated
scenario stores, tying the E stage, V stage and metrics together."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.edp import EDPConfig, EDPMatcher
from repro.core.set_splitting import SetSplitter, SplitConfig
from repro.core.vid_filtering import VIDFilter
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID, VID

# A random consistent store: per (cell, tick), a random subset of a
# small universe is present, with one detection per present person.
universe_size = 8


@st.composite
def consistent_stores(draw):
    num_cells = draw(st.integers(min_value=1, max_value=3))
    num_ticks = draw(st.integers(min_value=1, max_value=8))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(rng_seed)
    features = rng.standard_normal((universe_size, 8))
    features /= np.linalg.norm(features, axis=1, keepdims=True)
    scenarios = []
    det_id = 0
    for tick in range(num_ticks):
        # Partition people over cells at this tick.
        assignment = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_cells - 1),
                min_size=universe_size,
                max_size=universe_size,
            )
        )
        for cell in range(num_cells):
            members = [i for i in range(universe_size) if assignment[i] == cell]
            if not members:
                continue
            key = ScenarioKey(cell_id=cell, tick=tick)
            detections = tuple(
                Detection(det_id + j, features[i], VID(i))
                for j, i in enumerate(members)
            )
            det_id += len(members)
            scenarios.append(
                EVScenario(
                    e=EScenario(
                        key=key,
                        inclusive=frozenset(EID(i) for i in members),
                    ),
                    v=VScenario(key=key, detections=detections),
                )
            )
    return ScenarioStore(scenarios)


class TestSplitterInvariants:
    @given(consistent_stores(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_evidence_invariants(self, store, seed):
        """For any store: evidence scenarios contain the target
        inclusively, candidates equal the evidence intersection, and
        recorded is duplicate-free and within the store."""
        universe = set()
        for e_scenario in store.e_scenarios():
            universe |= e_scenario.eids
        if not universe:
            return
        targets = sorted(universe)[:3]
        splitter = SetSplitter(store, SplitConfig(seed=seed, min_gap_ticks=0))
        result = splitter.run(targets, universe=universe)
        assert len(result.recorded) == len(set(result.recorded))
        for key in result.recorded:
            assert key in store
        for target in targets:
            expected = set(universe)
            for key in result.evidence[target]:
                e_scenario = store.e_scenario(key)
                assert target in e_scenario.inclusive
                expected &= set(e_scenario.inclusive | e_scenario.vague)
            assert result.candidates[target] == frozenset(expected)
            assert target in result.candidates[target]

    @given(consistent_stores())
    @settings(max_examples=20, deadline=None)
    def test_recorded_is_union_of_evidence(self, store):
        """Structural reuse invariant: the recorded set is exactly the
        union of per-target evidence lists — SS never charges the V
        stage for a scenario no target uses.  (SS beating EDP on
        *count* is a statistical property of large worlds, checked by
        the Fig. 5 benchmark, not a universal one: on toy stores EDP's
        per-target greedy can find near-minimal selections.)"""
        universe = set()
        for e_scenario in store.e_scenarios():
            universe |= e_scenario.eids
        if len(universe) < 4:
            return
        targets = sorted(universe)[:4]
        ss = SetSplitter(store, SplitConfig(seed=1, min_gap_ticks=0)).run(
            targets, universe=universe
        )
        used = {key for t in targets for key in ss.evidence[t]}
        assert set(ss.recorded) == used
        # And both algorithms distinguish the same toy targets when the
        # store permits it at all.
        edp = EDPMatcher(store, EDPConfig(seed=1, min_gap_ticks=0)).run(
            targets, universe=universe
        )
        assert ss.distinguished <= set(targets)
        assert edp.distinguished <= set(targets)


class TestFilterInvariants:
    @given(consistent_stores(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_choices_come_from_their_scenarios(self, store, seed):
        universe = set()
        for e_scenario in store.e_scenarios():
            universe |= e_scenario.eids
        if not universe:
            return
        target = sorted(universe)[0]
        splitter = SetSplitter(store, SplitConfig(seed=seed, min_gap_ticks=0))
        split = splitter.run([target], universe=universe)
        result = VIDFilter(store).match_one(target, split.evidence[target])
        assert len(result.chosen) == len(result.scenario_keys)
        for key, detection in zip(result.scenario_keys, result.chosen):
            scenario_ids = {
                d.detection_id for d in store.v_scenario(key).detections
            }
            assert detection.detection_id in scenario_ids
        for score in result.scores:
            assert 0.0 <= score <= 1.0 + 1e-9
        assert 0.0 <= result.agreement <= 1.0

    @given(consistent_stores())
    @settings(max_examples=20, deadline=None)
    def test_noise_free_distinguished_targets_match_perfectly(self, store):
        """With noise-free features, a fully distinguished target's
        choices are all the true person — the ideal-setting guarantee
        of Sec. IV-B."""
        universe = set()
        for e_scenario in store.e_scenarios():
            universe |= e_scenario.eids
        if not universe:
            return
        targets = sorted(universe)
        splitter = SetSplitter(store, SplitConfig(seed=2, min_gap_ticks=0))
        split = splitter.run(targets, universe=universe)
        vid_filter = VIDFilter(store)
        for target in split.distinguished:
            result = vid_filter.match_one(target, split.evidence[target])
            for detection in result.chosen:
                assert detection.true_vid == VID(target.index)
