"""Unit tests for the continuous sampling profiler (ISSUE 9).

Covered:

* export formats — collapsed-stack text and speedscope "sampled" JSON
  (shared frame table, wall-clock anchoring, monotone weights);
* span attribution — a synthetic ``match`` ▸ ``e.split`` /
  ``v.filter`` workload must land >= 90% of its samples under the
  correct span labels (the acceptance bar for flamegraph usefulness);
* the disabled profiler is free — no sampler thread exists and a
  paired microbench under the null profiler shows no overhead beyond
  timer noise;
* lifecycle — restartability, ``snapshot(reset=True)`` windows, the
  process-global get/set/null surface;
* cluster merge helpers — ``worker=<id>`` rooting, count aggregation,
  malformed wire entries skipped.
"""

import threading
import time

import pytest

from repro.obs.profiler import (
    DEFAULT_PROFILE_HZ,
    MAX_PROFILE_HZ,
    SPEEDSCOPE_SCHEMA,
    NullProfiler,
    ProfileSnapshot,
    SamplingProfiler,
    get_profiler,
    merge_collapsed,
    merged_speedscope,
    null_profiler,
    set_profiler,
)
from repro.obs.tracing import NullTracer, Tracer, set_tracer


@pytest.fixture()
def real_tracer():
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


def _snapshot(counts, hz=100.0, samples=None):
    total = samples if samples is not None else sum(counts.values())
    return ProfileSnapshot(
        counts={(1, stack): count for stack, count in counts.items()},
        samples=total,
        hz=hz,
        pid=4242,
        tag="test",
        started_wall_s=1000.0,
        ended_wall_s=1001.0,
    )


class TestExports:
    def test_collapsed_format_heaviest_first(self):
        snap = _snapshot({
            ("a", "b"): 3,
            ("a", "c"): 7,
            ("a",): 3,
        })
        assert snap.collapsed().splitlines() == [
            "a;c 7",
            "a 3",  # ties break lexicographically
            "a;b 3",
        ]

    def test_stacks_aggregate_over_threads(self):
        snap = ProfileSnapshot(
            counts={(1, ("a",)): 2, (2, ("a",)): 3, (2, ("b",)): 1},
            samples=6, hz=100.0, pid=1, tag=None,
            started_wall_s=0.0, ended_wall_s=1.0,
        )
        assert snap.stacks() == {("a",): 5, ("b",): 1}
        assert snap.thread_stacks(2) == {("a",): 3, ("b",): 1}

    def test_speedscope_document_shape(self):
        snap = _snapshot({("a", "b"): 4, ("a",): 1}, hz=100.0)
        doc = snap.speedscope()
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "microseconds"
        # Wall-clock anchored: startValue is epoch microseconds, the
        # same axis span_records' ts_us uses.
        assert profile["startValue"] == 1000.0 * 1e6
        # 100 Hz -> each sample weighs 10_000 us.
        assert profile["weights"] == [40_000.0, 10_000.0]
        assert profile["endValue"] == profile["startValue"] + 50_000.0
        frames = [f["name"] for f in doc["shared"]["frames"]]
        for indices in profile["samples"]:
            assert all(0 <= i < len(frames) for i in indices)
        # Heaviest-first stacks make the weights monotone non-increasing.
        assert profile["weights"] == sorted(profile["weights"], reverse=True)

    def test_wire_roundtrip(self):
        snap = _snapshot({("x", "y"): 2})
        wire = snap.to_wire()
        assert wire["stacks"] == [[["x", "y"], 2]]
        assert wire["hz"] == 100.0
        assert wire["pid"] == 4242


def _busy(deadline_s):
    total = 0
    while time.perf_counter() < deadline_s:
        for i in range(2000):
            total += i * i
    return total


class TestSpanAttribution:
    def test_workload_samples_fold_under_span_labels(self, real_tracer):
        """The acceptance bar: a synthetic match workload's flamegraph
        attributes >= 90% of that thread's samples under the right
        ``match`` ▸ ``e.split`` / ``v.filter`` span prefixes."""
        ready = threading.Event()
        tids = {}

        def workload():
            tids["worker"] = threading.get_ident()
            ready.set()
            with real_tracer.span("match"):
                with real_tracer.span("e.split"):
                    _busy(time.perf_counter() + 0.25)
                with real_tracer.span("v.filter"):
                    _busy(time.perf_counter() + 0.25)

        profiler = SamplingProfiler(hz=200.0, tag="attr-test")
        thread = threading.Thread(target=workload)
        with profiler:
            thread.start()
            ready.wait(timeout=5.0)
            thread.join(timeout=10.0)
        snap = profiler.snapshot()
        assert not thread.is_alive()

        stacks = snap.thread_stacks(tids["worker"])
        total = sum(stacks.values())
        assert total >= 10, f"sampler landed only {total} samples"
        attributed = sum(
            count
            for stack, count in stacks.items()
            if stack[:2] in (("match", "e.split"), ("match", "v.filter"))
        )
        assert attributed / total >= 0.90, (
            f"only {attributed}/{total} samples under the span labels:\n"
            + "\n".join(f"{s} {c}" for s, c in stacks.items())
        )
        # Both stages actually appear (the workload ran them ~equally).
        prefixes = {stack[:2] for stack in stacks if len(stack) >= 2}
        assert ("match", "e.split") in prefixes
        assert ("match", "v.filter") in prefixes
        # Frame labels continue below the span prefix.
        assert any(
            any("test_obs_profiler" in label for label in stack)
            for stack in stacks
        )

    def test_null_tracer_samples_are_frames_only(self):
        previous = set_tracer(NullTracer())
        try:
            profiler = SamplingProfiler(hz=300.0)
            with profiler:
                _busy(time.perf_counter() + 0.1)
            snap = profiler.snapshot()
        finally:
            set_tracer(previous)
        assert snap.samples > 0
        for stack in snap.stacks():
            assert all("." in label or ";" not in label for label in stack)
            assert not stack[0].startswith("match")


class TestDisabledProfilerIsFree:
    def test_no_sampler_thread_exists(self):
        assert isinstance(get_profiler(), NullProfiler)
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )
        null = null_profiler()
        assert null.start() is null
        assert null.running is False
        snap = null.stop()
        assert snap.samples == 0 and snap.counts == {}
        assert snap.collapsed() == ""
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )

    def test_disabled_profiler_adds_no_measurable_overhead(self):
        """Tier-1 microbench pin: the same busy loop, paired, with and
        without the (disabled) profiler installed.  The null profiler
        is never consulted on the hot path, so the medians differ only
        by timer noise — bounded at 10% to stay CI-proof."""

        def arm():
            deadline = time.perf_counter() + 0.02
            return _busy(deadline)

        baseline = []
        disabled = []
        for _ in range(3):
            arm()  # warmup
        for index in range(10):
            order = ("bare", "null") if index % 2 == 0 else ("null", "bare")
            for mode in order:
                if mode == "null":
                    previous = set_profiler(NullProfiler())
                started = time.perf_counter()
                arm()
                elapsed = time.perf_counter() - started
                if mode == "null":
                    set_profiler(previous)
                    disabled.append(elapsed)
                else:
                    baseline.append(elapsed)
        baseline.sort()
        disabled.sort()
        base_med = baseline[len(baseline) // 2]
        null_med = disabled[len(disabled) // 2]
        assert null_med <= base_med * 1.10, (
            f"disabled profiler cost {100 * (null_med / base_med - 1):.1f}% "
            "on the microbench — it must be free"
        )


class TestLifecycle:
    def test_restart_resumes_accumulation(self):
        profiler = SamplingProfiler(hz=400.0)
        profiler.start()
        _busy(time.perf_counter() + 0.05)
        first = profiler.stop()
        assert not profiler.running
        profiler.start()
        assert profiler.running
        _busy(time.perf_counter() + 0.05)
        second = profiler.stop()
        assert second.samples >= first.samples
        assert second.started_wall_s == first.started_wall_s

    def test_snapshot_reset_opens_a_fresh_window(self):
        profiler = SamplingProfiler(hz=400.0)
        with profiler:
            _busy(time.perf_counter() + 0.05)
            first = profiler.snapshot(reset=True)
            after = profiler.snapshot()
        assert first.samples > 0
        # The reset opened a fresh window: only the instants between
        # the two snapshot calls were sampled into it.
        assert after.samples < first.samples
        assert after.started_wall_s >= first.started_wall_s

    def test_start_is_idempotent_and_stop_joins(self):
        profiler = SamplingProfiler(hz=100.0)
        assert profiler.start() is profiler
        thread_count = sum(
            1 for t in threading.enumerate() if t.name == "repro-profiler"
        )
        profiler.start()  # no second thread
        assert sum(
            1 for t in threading.enumerate() if t.name == "repro-profiler"
        ) == thread_count == 1
        profiler.stop()
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=MAX_PROFILE_HZ + 1)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stack_depth=0)

    def test_set_profiler_swaps_and_returns_previous(self):
        mine = SamplingProfiler(hz=50.0)
        previous = set_profiler(mine)
        try:
            assert get_profiler() is mine
        finally:
            assert set_profiler(previous) is mine
        assert get_profiler() is previous


class TestClusterMerge:
    @staticmethod
    def wire(stacks, hz=100.0, pid=1, started=1000.0):
        return {
            "pid": pid,
            "tag": None,
            "hz": hz,
            "samples": sum(c for _, c in stacks),
            "started_wall_s": started,
            "ended_wall_s": started + 1.0,
            "stacks": [[list(s), c] for s, c in stacks],
        }

    def test_merge_collapsed_roots_by_worker(self):
        merged = merge_collapsed({
            "w0": self.wire([(("a", "b"), 5)]),
            "w1": self.wire([(("a", "b"), 2), (("c",), 1)]),
        })
        assert merged.splitlines() == [
            "worker=w0;a;b 5",
            "worker=w1;a;b 2",
            "worker=w1;c 1",
        ]

    def test_merged_speedscope_shares_the_frame_table(self):
        doc = merged_speedscope({
            "w0": self.wire([(("a", "b"), 5)], pid=10),
            "w1": self.wire([(("a", "b"), 2)], pid=11),
        })
        assert [p["name"] for p in doc["profiles"]] == [
            "worker=w0 pid=10",
            "worker=w1 pid=11",
        ]
        # Identical stacks intern to the same indices in both profiles.
        assert doc["profiles"][0]["samples"] == doc["profiles"][1]["samples"]
        assert len(doc["shared"]["frames"]) == 2
        for profile in doc["profiles"]:
            assert profile["weights"] == sorted(
                profile["weights"], reverse=True
            )

    def test_malformed_wire_entries_are_skipped(self):
        merged = merge_collapsed({
            "w0": {
                "hz": 100.0,
                "stacks": [
                    [["good"], 3],
                    [["bad"], "not a count"],
                    "not a pair",
                    [[], 5],
                    [["neg"], -1],
                ],
            },
        })
        assert merged == "worker=w0;good 3"

    def test_empty_profiles_merge_to_empty(self):
        assert merge_collapsed({}) == ""
        doc = merged_speedscope({})
        assert doc["profiles"] == []
        assert doc["shared"]["frames"] == []
