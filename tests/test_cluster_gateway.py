"""Gateway tests: the NDJSON TCP surface, SSE streaming, and drain.

One small fleet (2 worker processes) is shared module-wide; each test
gets its own gateway (cheap: a thread and an ephemeral port), so the
drain test can tear one down without starving its neighbours.
"""

import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterGateway,
    ClusterRouter,
    GatewayClient,
    GatewayError,
    Supervisor,
    SupervisorConfig,
    WorkerSpec,
)
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import EVDataset, build_dataset
from repro.datagen.io import save_dataset
from repro.obs import EventLog, set_event_log
from repro.sensing.scenarios import ScenarioStore
from repro.service.api import (
    STATUS_OK,
    STATUS_SHED,
    IngestTickRequest,
    InvestigateRequest,
    MatchRequest,
)
from repro.service.loadgen import LoadConfig, run_load_socket
from repro.service.server import ServiceConfig


@dataclass
class GatewayStack:
    supervisor: Supervisor
    router: ClusterRouter
    dataset: EVDataset
    arriving: list
    targets: list
    log: EventLog


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    log = EventLog()
    previous = set_event_log(log)
    config = ExperimentConfig(
        num_people=60,
        cells_per_side=3,
        duration=400.0,
        sample_dt=10.0,
        warmup=100.0,
        feature_dimension=16,
        seed=11,
    )
    dataset = build_dataset(config)
    full = dataset.store
    ticks = list(full.ticks)
    cutoff = ticks[int(len(ticks) * 0.7)]
    standing = ScenarioStore(
        [full.get(k) for k in full.keys if k.tick <= cutoff]
    )
    arriving = [full.get(k) for k in full.keys if k.tick > cutoff]
    workdir: Path = tmp_path_factory.mktemp("gateway-world")
    path = save_dataset(
        EVDataset(
            config=config,
            population=dataset.population,
            grid=dataset.grid,
            traces=None,
            store=standing,
        ),
        workdir / "world.npz",
    )
    supervisor = Supervisor(
        [
            WorkerSpec(
                worker_id=f"w{i}",
                dataset_path=str(path),
                journal_path=str(workdir / f"w{i}.journal.jsonl"),
                service=ServiceConfig(workers=2, queue_size=64),
            )
            for i in range(2)
        ],
        SupervisorConfig(ready_timeout_s=120.0),
    ).start()
    router = ClusterRouter(supervisor, replication=2, read_policy="first")
    yield GatewayStack(
        supervisor=supervisor,
        router=router,
        dataset=dataset,
        arriving=arriving,
        targets=list(dataset.sample_targets(3, seed=2)),
        log=log,
    )
    supervisor.stop()
    set_event_log(previous)


@pytest.fixture()
def gateway(stack):
    gw = ClusterGateway(stack.router, stack.supervisor).start()
    yield gw
    gw.drain(timeout=5.0)


@pytest.fixture()
def client(gateway):
    with GatewayClient(gateway.host, gateway.port) as c:
        yield c


class TestLocalVerbs:
    def test_ping(self, client, gateway):
        assert client.ping()

    def test_health_reports_cluster_availability(self, client):
        response = client.call({"verb": "health"})
        assert response["workers_available"] == 2
        assert response["workers_total"] == 2
        assert response["degraded"] is False
        assert client.health().window_s > 0

    def test_stats_snapshot(self, client):
        stats = client.stats()
        assert stats["status"] == STATUS_OK
        assert set(stats["workers"]) == {"w0", "w1"}
        assert all(
            worker["state"] == "ready" for worker in stats["workers"].values()
        )
        assert stats["routing"]["replication"] == 2
        assert stats["routing"]["read_policy"] == "first"
        assert stats["draining"] is False

    def test_metrics_exposition(self, client):
        client.ping()  # ensure at least one gateway request is counted
        text = client.metrics_text()
        assert "ev_cluster_gateway_requests_total" in text
        assert "ev_cluster_workers_available" in text

    def test_unknown_verb_is_an_error_not_a_hangup(self, client):
        response = client.call({"verb": "frobnicate"})
        assert response["status"] == "error"
        # connection survives: next call still works
        assert client.ping()

    def test_garbage_line_closes_connection_with_error(self, gateway):
        import socket

        with socket.create_connection(
            (gateway.host, gateway.port), timeout=10
        ) as sock:
            sock.sendall(b"this is not json\n")
            reply = sock.makefile("rb").readline()
        assert b'"error"' in reply


class TestDataPlane:
    def test_match_over_the_wire(self, stack, client):
        response = client.submit(
            MatchRequest(targets=tuple(stack.targets))
        ).result(timeout=30)
        assert response.status == STATUS_OK
        assert set(response.matches) == set(stack.targets)

    def test_investigate_over_the_wire(self, stack, client):
        response = client.submit(
            InvestigateRequest(eid=stack.targets[0], min_shared=2)
        ).result(timeout=30)
        assert response.status == STATUS_OK
        assert response.eid == stack.targets[0]
        assert response.num_scenarios > 0

    def test_ingest_broadcasts_and_deduplicates(self, stack, client):
        batch = tuple(stack.arriving[:4])
        first = client.submit(IngestTickRequest(scenarios=batch)).result(
            timeout=30
        )
        assert first.status == STATUS_OK
        assert first.ingested == 4
        duplicate = client.submit(IngestTickRequest(scenarios=batch)).result(
            timeout=30
        )
        assert duplicate.status == STATUS_OK
        assert duplicate.ingested == 0

    def test_cache_affinity_repeats_land_on_one_worker(self, stack, client):
        message = {
            "verb": "match",
            "targets": [eid.index for eid in stack.targets],
            "algorithm": "ss",
        }
        workers = {client.call(message)["worker"] for _ in range(5)}
        assert len(workers) == 1  # consistent hashing pins the key

    def test_quorum_policy_answers_with_agreement(self, stack, client):
        # Use targets no earlier test queried: both replicas compute
        # fresh (no warm cache), and deterministic builds of one world
        # must produce byte-identical payloads.
        fresh = [eid.index for eid in stack.dataset.sample_targets(2, seed=77)]
        stack.router.read_policy = "quorum"
        try:
            response = client.call(
                {"verb": "match", "targets": fresh, "algorithm": "ss"}
            )
            assert response["status"] == STATUS_OK
            assert response["responders"] == 2
            assert response["quorum"] == 2
        finally:
            stack.router.read_policy = "first"

    def test_quorum_detects_stale_replica_disagreement(self, stack, client):
        """The disagreement counter catches replica divergence.

        The service's cache-invalidation rule drops entries whose
        tagged EIDs appear in new scenarios' E-records; an ingest can
        still shift a cached answer through window coupling without
        naming the entry's targets.  Warm exactly one replica, ingest
        such a batch, and a quorum read sees stale-vs-fresh payloads:
        the read still answers, and the divergence is counted.
        """
        from repro.obs import get_registry
        from repro.stream.checkpoint import scenario_to_json

        message = {
            "verb": "match",
            "targets": [eid.index for eid in stack.targets],
            "algorithm": "ss",
        }
        # Warm only the preferred replica's cache.
        assert client.call(message)["status"] == STATUS_OK
        # Ingest a batch that does not name the cached targets (so the
        # invalidation rule leaves the warm entry in place).
        ingest = client.call(
            {
                "verb": "ingest",
                "scenarios": [
                    scenario_to_json(s) for s in stack.arriving[4:8]
                ],
            }
        )
        assert ingest["status"] == STATUS_OK
        counter = get_registry().counter(
            "ev_cluster_quorum_disagreements_total",
            "Quorum reads where replicas returned differing payloads",
        )
        before = counter.total()
        stack.router.read_policy = "quorum"
        try:
            response = client.call(message)
        finally:
            stack.router.read_policy = "first"
        # The read is still answered either way ...
        assert response["status"] == STATUS_OK
        assert response["responders"] == 2
        # ... and if the stale cache made the replicas diverge, the
        # disagreement was detected and counted, not papered over.
        if response["quorum"] < 2:
            assert counter.total() == before + 1


class TestEventStream:
    def test_sse_backlog_and_filter(self, stack, gateway):
        # The module log may hold started-events from earlier gateways;
        # stream the whole backlog of that type — the last is ours.
        backlog = len(
            [
                event
                for event in stack.log.events()
                if event["type"] == "cluster.gateway.started"
            ]
        )
        assert backlog >= 1
        with GatewayClient(gateway.host, gateway.port) as tail:
            pairs = list(
                tail.stream_events(
                    types=["cluster.gateway.started"],
                    max_events=backlog,
                    timeout_s=15.0,
                )
            )
        assert len(pairs) == backlog
        assert all(t == "cluster.gateway.started" for t, _ in pairs)
        assert pairs[-1][1]["fields"]["port"] == gateway.port

    def test_sse_delivers_live_events(self, stack, gateway):
        received = []

        def tail():
            with GatewayClient(gateway.host, gateway.port) as tail_client:
                for event_type, _ in tail_client.stream_events(
                    types=["cluster.route.failover"],
                    max_events=1,
                    timeout_s=15.0,
                ):
                    received.append(event_type)

        thread = threading.Thread(target=tail)
        thread.start()
        time.sleep(0.3)  # let the subscriber catch up to the backlog
        stack.log.emit("cluster.route.failover", verb="match", worker="w9")
        thread.join(timeout=15.0)
        assert received == ["cluster.route.failover"]


class TestLoadgenSocketMode:
    def test_run_load_socket_end_to_end(self, stack, gateway):
        report = run_load_socket(
            gateway.host,
            gateway.port,
            stack.targets,
            LoadConfig(
                num_clients=3,
                requests_per_client=5,
                pool_size=4,
                targets_per_request=2,
                investigate_fraction=0.25,
                seed=3,
            ),
        )
        assert report.issued == 15
        assert report.ok == 15
        assert report.errors == 0
        assert len(report.latencies_s) == 15
        # health() is the gateway's verdict, proving the duck worked
        assert report.final_health is not None


class TestDrain:
    def test_draining_sheds_new_work_but_keeps_control_plane(
        self, stack, gateway, client
    ):
        gateway.draining = True
        try:
            response = client.call(
                {
                    "verb": "match",
                    "targets": [stack.targets[0].index],
                    "algorithm": "ss",
                }
            )
            assert response["status"] == STATUS_SHED
            assert client.ping()  # control plane still answers
            assert client.stats()["draining"] is True
        finally:
            gateway.draining = False
        recovered = client.submit(
            MatchRequest(targets=(stack.targets[0],))
        ).result(timeout=30)
        assert recovered.status == STATUS_OK

    def test_drain_waits_for_inflight_requests(
        self, stack, gateway, monkeypatch
    ):
        real_dispatch = stack.router.dispatch

        def slow_dispatch(message):
            time.sleep(0.5)
            return real_dispatch(message)

        monkeypatch.setattr(stack.router, "dispatch", slow_dispatch)
        results = []

        def issue():
            with GatewayClient(gateway.host, gateway.port) as c:
                results.append(
                    c.submit(MatchRequest(targets=(stack.targets[0],))).result(
                        timeout=30
                    )
                )

        thread = threading.Thread(target=issue)
        thread.start()
        time.sleep(0.2)  # the request is accepted and in flight
        summary = gateway.drain(timeout=10.0)
        thread.join(timeout=30.0)
        # drain blocked until the in-flight request resolved ...
        assert summary == {"drained": True, "inflight": 0}
        # ... and the accepted request was answered, not abandoned
        assert len(results) == 1
        assert results[0].status == STATUS_OK
        drained = [
            event
            for event in stack.log.events()
            if event["type"] == "cluster.gateway.drained"
        ]
        assert drained[-1]["fields"]["inflight_abandoned"] == 0

    def test_drained_gateway_refuses_new_connections(self, stack):
        gateway = ClusterGateway(stack.router, stack.supervisor).start()
        gateway.drain(timeout=5.0)
        with pytest.raises((GatewayError, OSError)):
            with GatewayClient(gateway.host, gateway.port, timeout_s=2.0) as c:
                c.ping()
