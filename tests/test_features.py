"""Tests for the appearance feature model (the CUHK02 stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.world.entities import VID
from repro.world.features import (
    AppearanceModel,
    FeatureSpace,
    normalized_distance,
    similarity,
)


class TestFeatureSpace:
    def test_defaults_valid(self):
        space = FeatureSpace()
        assert space.dimension >= 2
        assert 0 <= space.outlier_rate <= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 1},
            {"observation_noise": -0.1},
            {"outlier_rate": 1.5},
            {"outlier_noise": -1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FeatureSpace(**kwargs)


class TestDistanceAndSimilarity:
    def test_identical_vectors(self):
        v = np.zeros(8)
        v[0] = 1.0
        assert normalized_distance(v, v) == 0.0
        assert similarity(v, v) == 1.0

    def test_antipodal_vectors(self):
        v = np.zeros(8)
        v[0] = 1.0
        assert normalized_distance(v, -v) == pytest.approx(1.0)
        assert similarity(v, -v) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        a = np.zeros(4)
        b = np.zeros(4)
        a[0] = 1.0
        b[1] = 1.0
        assert normalized_distance(a, b) == pytest.approx(np.sqrt(2) / 2)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_distance_in_unit_interval_for_unit_vectors(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        a /= np.linalg.norm(a)
        b /= np.linalg.norm(b)
        d = normalized_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert similarity(a, b) == pytest.approx(1.0 - d)


class TestAppearanceModel:
    def test_latent_vectors_unit_norm(self):
        model = AppearanceModel(num_vids=10, seed=1)
        for i in range(10):
            assert np.linalg.norm(model.latent(VID(i))) == pytest.approx(1.0)

    def test_latent_unknown_vid_raises(self):
        model = AppearanceModel(num_vids=3)
        with pytest.raises(KeyError):
            model.latent(VID(3))

    def test_invalid_num_vids(self):
        with pytest.raises(ValueError):
            AppearanceModel(num_vids=0)

    def test_observation_unit_norm(self):
        model = AppearanceModel(num_vids=5, seed=1)
        rng = np.random.default_rng(0)
        obs = model.observe(VID(2), rng)
        assert np.linalg.norm(obs) == pytest.approx(1.0)

    def test_observations_deterministic_given_rng(self):
        model = AppearanceModel(num_vids=5, seed=1)
        a = model.observe(VID(1), np.random.default_rng(7))
        b = model.observe(VID(1), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_latents(self):
        a = AppearanceModel(num_vids=4, seed=9)
        b = AppearanceModel(num_vids=4, seed=9)
        np.testing.assert_array_equal(a.latent(VID(0)), b.latent(VID(0)))

    def test_observe_many(self):
        model = AppearanceModel(num_vids=6, seed=1)
        rng = np.random.default_rng(0)
        obs = model.observe_many([VID(0), VID(3)], rng)
        assert set(obs.keys()) == {VID(0), VID(3)}

    def test_same_person_beats_cross_person(self):
        """The calibrated regime: same-person similarity is clearly
        above cross-person similarity on average."""
        model = AppearanceModel(num_vids=50, seed=2)
        same = model.expected_same_person_similarity(samples=200)
        cross = model.expected_cross_person_similarity(samples=200)
        assert same > cross + 0.15

    def test_cross_estimate_needs_two_vids(self):
        model = AppearanceModel(num_vids=1)
        with pytest.raises(ValueError):
            model.expected_cross_person_similarity()

    def test_outliers_lower_mean_similarity(self):
        clean_space = FeatureSpace(outlier_rate=0.0)
        dirty_space = FeatureSpace(outlier_rate=0.5)
        clean = AppearanceModel(num_vids=5, space=clean_space, seed=3)
        dirty = AppearanceModel(num_vids=5, space=dirty_space, seed=3)
        assert (
            dirty.expected_same_person_similarity(samples=300)
            < clean.expected_same_person_similarity(samples=300) - 0.02
        )

    def test_noise_zero_reproduces_latent(self):
        space = FeatureSpace(observation_noise=0.0, outlier_rate=0.0)
        model = AppearanceModel(num_vids=3, space=space, seed=4)
        obs = model.observe(VID(1), np.random.default_rng(0))
        np.testing.assert_allclose(obs, model.latent(VID(1)), atol=1e-12)
