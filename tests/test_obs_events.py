"""The flight recorder: event log, run/provenance plumbing, reports.

Covers the event envelope contract (run + span correlation, including
across threads), the bounded ring and JSONL sink, provenance records
surviving the MapReduce engine path, the CLI's --events/--report run
artifacts, and the Prometheus label-escaping regression.
"""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro.core.matcher import EVMatcher
from repro.obs import (
    EventLog,
    MetricsRegistry,
    NullEventLog,
    RUN_REPORT_SECTIONS,
    Tracer,
    get_event_log,
    load_events,
    new_run_context,
    null_registry,
    render_report_from_events,
    set_event_log,
    set_registry,
    set_run_context,
    set_tracer,
)
from repro.obs import events as ev
from repro.parallel.driver import ParallelEVMatcher


@pytest.fixture()
def event_log():
    """A fresh in-memory log installed as the process default."""
    log = EventLog(capacity=64)
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)


@pytest.fixture()
def run_context():
    run = new_run_context("test", parameters={"k": 1}, seed=7, backend="bitset")
    previous = set_run_context(run)
    try:
        yield run
    finally:
        set_run_context(previous)


@pytest.fixture()
def tracer():
    fresh = Tracer()
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


# -- envelope + ring -------------------------------------------------------
class TestEventLog:
    def test_envelope_carries_run_and_span(self, event_log, run_context, tracer):
        with tracer.span("outer") as span:
            event_log.emit("test.event", answer=42)
        (event,) = event_log.events()
        assert event["type"] == "test.event"
        assert event["fields"] == {"answer": 42}
        assert event["run_id"] == run_context.run_id
        assert event["span_id"] == span.span_id
        assert event["seq"] > 0 and event["ts"] > 0

    def test_no_run_no_span_defaults(self, event_log):
        event_log.emit("test.bare")
        (event,) = event_log.events()
        assert event["run_id"] == ""
        assert event["span_id"] is None

    def test_ring_is_bounded(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("test.tick", i=i)
        assert len(log) == 4
        assert log.emitted == 10
        assert log.dropped == 6
        assert [e["fields"]["i"] for e in log.events()] == [6, 7, 8, 9]

    def test_type_filter(self, event_log):
        event_log.emit("test.a")
        event_log.emit("test.b")
        event_log.emit("test.a")
        assert len(event_log.events("test.a")) == 2

    def test_null_log_is_disabled_noop(self):
        log = NullEventLog()
        assert log.enabled is False
        log.emit("test.ignored")
        assert log.events() == [] and len(log) == 0

    def test_default_is_null(self):
        assert get_event_log().enabled is False

    def test_jsonl_sink_roundtrip(self, tmp_path, run_context):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=2, sink=str(path))
        for i in range(5):
            log.emit("test.tick", i=i)
        log.close()
        # The ring drops, the sink keeps everything.
        loaded = load_events(str(path))
        assert [e["fields"]["i"] for e in loaded] == list(range(5))
        assert all(e["run_id"] == run_context.run_id for e in loaded)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_cross_thread_span_correlation(self, event_log, tracer):
        """Events emitted on a worker thread that entered the driver's
        context parent under the driver's active span — the engine's
        copy_context pattern."""
        recorded = {}

        def worker():
            event_log.emit("test.worker", where="thread")

        with tracer.span("driver") as span:
            recorded["span_id"] = span.span_id
            snapshot = contextvars.copy_context()
            thread = threading.Thread(target=lambda: snapshot.run(worker))
            thread.start()
            thread.join()
        (event,) = event_log.events("test.worker")
        assert event["span_id"] == recorded["span_id"]


# -- pipeline emission + provenance ---------------------------------------
class TestPipelineEvents:
    def test_local_match_emits_and_records(
        self, ideal_dataset, event_log, run_context, tracer
    ):
        targets = list(ideal_dataset.sample_targets(6, seed=1))
        EVMatcher(ideal_dataset.store).match(targets)
        types = {e["type"] for e in event_log.events()}
        assert ev.E_SPLIT_STARTED in types
        assert ev.E_SPLIT_CONVERGED in types
        # Per-decision chatter is debug-level; the info-level record of
        # each decision is its match.provenance mirror.
        assert ev.V_MATCH_DECIDED not in types
        assert ev.MATCH_PROVENANCE in types
        assert len(run_context.provenance) == len(targets)
        for record in run_context.provenance:
            assert record.predicted_vid is None or isinstance(
                record.predicted_vid, int
            )
            assert "EID" in record.explain()

    def test_debug_level_records_per_decision_chatter(
        self, ideal_dataset, run_context, tracer
    ):
        log = EventLog(capacity=256, level="debug")
        previous = set_event_log(log)
        try:
            targets = list(ideal_dataset.sample_targets(6, seed=1))
            EVMatcher(ideal_dataset.store).match(targets)
        finally:
            set_event_log(previous)
        types = {e["type"] for e in log.events()}
        assert ev.V_MATCH_DECIDED in types
        assert ev.E_TARGET_DISTINGUISHED in types
        decided = log.events(ev.V_MATCH_DECIDED)
        assert len(decided) == len(targets)

    def test_provenance_survives_mapreduce_engine(
        self, ideal_dataset, event_log, run_context
    ):
        targets = list(ideal_dataset.sample_targets(5, seed=1))
        report = ParallelEVMatcher(ideal_dataset.store).match(targets)
        assert len(run_context.provenance) == len(targets)
        macs = {r.eid_mac for r in run_context.provenance}
        assert macs == {t.mac for t in targets}
        # Mirrored as events, each carrying the run id.
        mirrored = event_log.events(ev.MATCH_PROVENANCE)
        assert len(mirrored) == len(targets)
        assert all(e["run_id"] == run_context.run_id for e in mirrored)
        # The engine's own lifecycle event rode along.
        assert event_log.events(ev.MR_JOB_FINISHED)
        assert report.results

    def test_provenance_skipped_when_nobody_listens(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(3, seed=1))
        EVMatcher(ideal_dataset.store).match(targets)
        # No run context, no event log: nothing recorded anywhere.
        assert get_event_log().events() == []


# -- CLI artifacts ---------------------------------------------------------
class TestCliFlightRecorder:
    def test_match_events_and_report(self, tmp_path, capsys):
        from repro.cli import main

        events_path = tmp_path / "run.jsonl"
        report_path = tmp_path / "report.md"
        code = main(
            [
                "match", "--people", "100", "--cells", "3",
                "--targets", "8", "--duration", "300",
                "--algorithm", "ss",
                "--events", str(events_path), "--report", str(report_path),
            ]
        )
        assert code == 0
        events = load_events(str(events_path))
        assert events
        run_ids = {e["run_id"] for e in events}
        assert len(run_ids) == 1 and "" not in run_ids
        footers = {ev.RUN_MANIFEST, ev.RUN_METRICS, ev.RUN_SPANS}
        for event in events:
            assert "span_id" in event
            if event["type"] not in footers:
                assert event["span_id"] is not None
        assert footers <= {e["type"] for e in events}

        text = report_path.read_text()
        for section in RUN_REPORT_SECTIONS:
            assert section in text
        # The provenance section answers "why this EID→VID" for at
        # least one matched pair.
        assert "→ VID" in text

        # The stream alone rebuilds an equivalent report offline.
        offline = render_report_from_events(str(events_path))
        for section in RUN_REPORT_SECTIONS:
            assert section in offline
        assert "→ VID" in offline

    def test_report_from_events_cli(self, tmp_path, capsys):
        from repro.cli import main

        events_path = tmp_path / "run.jsonl"
        out_path = tmp_path / "offline.md"
        assert main(
            [
                "match", "--people", "100", "--cells", "3",
                "--targets", "5", "--duration", "300",
                "--algorithm", "ss", "--events", str(events_path),
            ]
        ) == 0
        assert main(
            ["report", "--from-events", str(events_path), "--out", str(out_path)]
        ) == 0
        text = out_path.read_text()
        for section in RUN_REPORT_SECTIONS:
            assert section in text

    def test_globals_restored_after_run(self, tmp_path):
        from repro.cli import main
        from repro.obs import get_run_context, get_tracer

        main(
            [
                "match", "--people", "100", "--cells", "3",
                "--targets", "3", "--duration", "300",
                "--algorithm", "ss",
                "--events", str(tmp_path / "run.jsonl"),
            ]
        )
        assert get_event_log().enabled is False
        assert get_run_context() is None
        assert not isinstance(get_tracer(), Tracer)


# -- Prometheus escaping regression ---------------------------------------
class TestPrometheusEscaping:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_escape_total", help="counts\nthings\\here")
        counter.inc(path='va"l\\ue\nz')
        text = registry.render_prometheus()
        # The exposition format demands \" \\ \n inside label values
        # and \\ \n in HELP text — no raw newlines mid-line.
        assert 'path="va\\"l\\\\ue\\nz"' in text
        assert "# HELP test_escape_total counts\\nthings\\\\here" in text
        # Every sample stays on one parseable line despite the hostile
        # label value — the raw newline never reaches the exposition.
        import re

        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(samples) == 1
        assert re.fullmatch(r"\S+\{.*\} \S+", samples[0])

    def test_escaped_exposition_stays_line_oriented(self):
        registry = MetricsRegistry()
        registry.counter("test_lines_total").inc(who="a\nb")
        lines = registry.render_prometheus().splitlines()
        samples = [l for l in lines if not l.startswith("#")]
        assert len(samples) == 1
        assert samples[0] == 'test_lines_total{who="a\\nb"} 1'


@pytest.fixture(autouse=True)
def quiet_registry():
    """Keep pipeline metrics out of the module-global registry."""
    previous = set_registry(null_registry())
    try:
        yield
    finally:
        set_registry(previous)
