"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment, run_match


class TestParser:
    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.command == "match"
        assert args.algorithm == "both"
        assert args.people == 400

    def test_experiment_parsing(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.command == "experiment"
        assert args.name == "fig5"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunExperiment:
    def test_list(self):
        out = io.StringIO()
        assert run_experiment("list", out=out) == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text

    def test_unknown_experiment(self):
        assert run_experiment("fig99") == 2

    def test_registry_complete(self):
        # All nine tables/figures of the paper are runnable from the CLI.
        assert set(EXPERIMENTS) == {
            "fig5", "fig6", "fig7", "fig8", "fig9",
            "table1", "table2", "fig10", "fig11",
        }


class TestServeParser:
    def test_serve_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for flag in ("--workers", "--queue-size", "--shards", "--no-cache",
                     "--requests", "--watch"):
            assert flag in text

    def test_loadtest_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["loadtest", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for flag in ("--clients", "--requests", "--pool",
                     "--targets-per-request", "--workers", "--shards"):
            assert flag in text

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.workers == 2
        assert args.queue_size == 64
        assert not args.no_cache

    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.command == "loadtest"
        assert args.clients == 4
        assert args.pool == 8

    def test_serve_runs_demo_traffic(self, capsys):
        assert main(
            ["serve", "--people", "50", "--cells", "2", "--duration", "250",
             "--requests", "8", "--watch", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "service up" in out
        assert "service stats" in out

    def test_loadtest_reports_both_modes(self, capsys):
        assert main(
            ["loadtest", "--people", "50", "--cells", "2", "--duration", "250",
             "--clients", "2", "--requests", "4", "--pool", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "cached" in out and "speedup" in out


class TestRunMatch:
    def test_small_match_runs(self):
        out = io.StringIO()
        args = build_parser().parse_args(
            [
                "match",
                "--people", "60",
                "--cells", "2",
                "--targets", "15",
                "--duration", "300",
                "--algorithm", "ss",
            ]
        )
        assert run_match(args, out=out) == 0
        text = out.getvalue()
        assert "ss" in text and "accuracy_pct" in text

    def test_main_dispatch(self, capsys):
        assert main(["experiment", "list"]) == 0
        captured = capsys.readouterr()
        assert "fig5" in captured.out


class TestBuildAndInvestigate:
    def test_build_then_match_from_dataset(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "world.npz")
        assert main(
            ["build", "--out", out, "--people", "50", "--cells", "2",
             "--duration", "200"]
        ) == 0
        assert main(
            ["match", "--dataset", out, "--targets", "10", "--algorithm", "ss"]
        ) == 0
        captured = capsys.readouterr().out
        assert "saved" in captured and "accuracy_pct" in captured

    def test_investigate(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "world.npz")
        main(["build", "--out", out, "--people", "40", "--cells", "2",
              "--duration", "200"])
        assert main(["investigate", "--dataset", out, "--suspect", "1"]) == 0
        captured = capsys.readouterr().out
        assert "profile of" in captured

    def test_investigate_unknown_suspect(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "world.npz")
        main(["build", "--out", out, "--people", "20", "--cells", "2",
              "--duration", "150"])
        assert main(["investigate", "--dataset", out, "--suspect", "9999"]) == 2


class TestStream:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.speedup == 0.0
        assert args.jitter == 0
        assert args.policy == "block"
        assert args.checkpoint is None
        assert args.events is None

    def test_stream_flags(self):
        args = build_parser().parse_args(
            [
                "stream", "--checkpoint", "ck.json", "--speedup", "50",
                "--events", "ev.jsonl", "--jitter", "2", "--lateness", "3",
                "--max-events", "100", "--policy", "shed",
            ]
        )
        assert args.checkpoint == "ck.json"
        assert args.speedup == 50.0
        assert args.events == "ev.jsonl"
        assert args.jitter == 2
        assert args.lateness == 3
        assert args.max_events == 100
        assert args.policy == "shed"

    def test_stream_replay_reports_equivalence(self, capsys):
        code = main(
            [
                "stream", "--people", "25", "--cells", "3",
                "--duration", "100", "--seed", "5", "--jitter", "2",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "batch equivalence      OK" in captured
        assert "events applied" in captured

    def test_stream_kill_then_restore(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "ck.json")
        base = [
            "stream", "--people", "25", "--cells", "3", "--duration", "100",
            "--seed", "5", "--checkpoint", checkpoint,
        ]
        assert main(base + ["--max-events", "150"]) == 0
        first = capsys.readouterr().out
        assert "(killed)" in first
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "(restored)" in second
        assert "batch equivalence      OK" in second

    def test_stream_live_with_events(self, tmp_path, capsys):
        events_path = str(tmp_path / "ev.jsonl")
        code = main(
            [
                "stream", "--live", "--people", "15", "--cells", "3",
                "--windows", "3", "--events", events_path,
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "live stream" in captured
        import json

        events = [json.loads(line) for line in open(events_path)]
        types = {event["type"] for event in events}
        assert "stream.window.closed" in types
        assert "stream.scenario.emitted" in types


class TestProfilingCli:
    def test_match_profile_flags(self):
        args = build_parser().parse_args(
            ["match", "--profile", "out.collapsed", "--profile-hz", "50"]
        )
        assert args.profile == "out.collapsed"
        assert args.profile_hz == 50.0
        # Off by default: no sampler thread unless asked for.
        args = build_parser().parse_args(["match"])
        assert args.profile is None
        assert args.profile_hz is None

    def test_cluster_profile_parsing(self):
        args = build_parser().parse_args(
            [
                "cluster", "profile", "out.collapsed",
                "--requests", "4", "--profile-hz", "250",
                "--events-per-beat", "64", "--telemetry-interval", "0.5",
            ]
        )
        assert args.cluster_command == "profile"
        assert args.output == "out.collapsed"
        assert args.requests == 4
        assert args.profile_hz == 250.0
        assert args.events_per_beat == 64
        assert args.telemetry_interval == 0.5

    def test_cluster_serve_ships_tuning_flags(self):
        args = build_parser().parse_args(["cluster", "serve"])
        assert args.telemetry_interval == 1.0
        assert args.events_per_beat == 256
        assert args.profile_hz == 0.0  # profiling is opt-in

    def test_cluster_slowlog_parsing(self):
        args = build_parser().parse_args(
            ["cluster", "slowlog", "--connect", "127.0.0.1:7000", "--limit", "5"]
        )
        assert args.cluster_command == "slowlog"
        assert args.connect == "127.0.0.1:7000"
        assert args.limit == 5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "slowlog"])

    def test_match_profile_writes_both_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "prof.collapsed")
        code = main(
            [
                "match",
                "--people", "40", "--cells", "2", "--targets", "8",
                "--duration", "300", "--profile", out,
                "--profile-hz", "400",
            ]
        )
        assert code == 0
        collapsed = open(out).read()
        assert collapsed.strip(), "profiler landed no samples"
        for line in collapsed.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        import json

        doc = json.load(open(out + ".speedscope.json"))
        assert doc["profiles"], "speedscope document is empty"
        assert "profile" in capsys.readouterr().out


class TestTopologyCli:
    def test_parser_flags(self):
        args = build_parser().parse_args(["match"])
        assert args.topology is False
        args = build_parser().parse_args(["match", "--topology"])
        assert args.topology is True
        args = build_parser().parse_args(["cluster", "serve", "--topology"])
        assert args.topology is True
        args = build_parser().parse_args(
            ["topology", "build", "--out", "w.npz", "--people", "50"]
        )
        assert (args.command, args.topology_command) == ("topology", "build")
        assert args.people == 50
        args = build_parser().parse_args(["topology", "inspect", "--edges", "3"])
        assert args.topology_command == "inspect"
        assert args.edges == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology", "build"])  # --out required
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology"])  # subcommand required

    def test_topology_build_then_inspect(self, tmp_path, capsys):
        out = str(tmp_path / "world.npz")
        assert main(
            ["topology", "build", "--out", out, "--people", "40",
             "--cells", "3", "--duration", "200"]
        ) == 0
        assert main(
            ["topology", "inspect", "--dataset", out, "--edges", "5"]
        ) == 0
        captured = capsys.readouterr().out
        assert "camera graph" in captured
        assert "busiest" in captured
        assert "traversals" in captured

    def test_match_with_topology(self, tmp_path, capsys):
        out = str(tmp_path / "world.npz")
        assert main(
            ["build", "--out", out, "--people", "50", "--cells", "2",
             "--duration", "200"]
        ) == 0
        assert main(
            ["match", "--dataset", out, "--targets", "10",
             "--algorithm", "ss", "--topology"]
        ) == 0
        captured = capsys.readouterr().out
        assert "topology:" in captured and "fitted edges" in captured
        assert "accuracy_pct" in captured

    def test_match_topology_rejects_mapreduce(self, capsys):
        assert main(
            ["match", "--topology", "--engine", "mapreduce",
             "--people", "40", "--cells", "2", "--duration", "200"]
        ) == 2
        assert "not supported" in capsys.readouterr().err

    def test_match_topology_needs_a_fitted_graph(self, tmp_path, capsys):
        from repro.datagen.config import ExperimentConfig
        from repro.datagen.dataset import build_dataset
        from repro.datagen.io import save_dataset

        dataset = build_dataset(
            ExperimentConfig(
                num_people=30, cells_per_side=2, duration=150.0, seed=1
            )
        )
        dataset.topology = None  # a pre-topology world
        path = str(save_dataset(dataset, tmp_path / "old.npz"))
        assert main(
            ["match", "--dataset", path, "--targets", "5", "--topology"]
        ) == 2
        assert "fitted camera graph" in capsys.readouterr().err
        # Same world loads fine topology-blind (backward compatibility).
        assert main(["match", "--dataset", path, "--targets", "5"]) == 0

    def test_inspect_reports_the_camera_graph(self, capsys):
        assert main(
            ["inspect", "--people", "40", "--cells", "2", "--duration", "200"]
        ) == 0
        captured = capsys.readouterr().out
        assert "camera graph (topology):" in captured
        assert "fitted edges" in captured
