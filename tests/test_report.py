"""Tests for the report generator."""

import pytest

from repro.bench import datasets as ds_mod
from repro.bench.reporting import REPORT_SECTIONS, generate_report


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    ds_mod.dataset.cache_clear()
    yield
    ds_mod.dataset.cache_clear()


def test_sections_cover_every_table_and_figure():
    ids = {exp_id for exp_id, *_rest in REPORT_SECTIONS}
    assert ids == {
        "fig5", "fig6", "fig7", "fig8", "fig9",
        "table1", "table2", "fig10", "fig11",
    }


def test_generate_report(tmp_path):
    out = generate_report(tmp_path / "report.md")
    assert out.exists()
    text = out.read_text()
    for _exp_id, title, _fn, shape in REPORT_SECTIONS:
        assert title in text
        assert shape in text
    assert "Total experiment time" in text


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    assert main(["report", "--out", str(out)]) == 0
    assert out.exists()


def test_deprecated_shim_is_gone():
    """`repro.bench.report` finished its deprecation cycle: the module
    was deleted, so importing the old path fails cleanly instead of
    warning forever."""
    import importlib
    import sys

    sys.modules.pop("repro.bench.report", None)
    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.bench.report")
