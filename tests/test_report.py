"""Tests for the report generator."""

import pytest

from repro.bench import datasets as ds_mod
from repro.bench.reporting import REPORT_SECTIONS, generate_report


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    ds_mod.dataset.cache_clear()
    yield
    ds_mod.dataset.cache_clear()


def test_sections_cover_every_table_and_figure():
    ids = {exp_id for exp_id, *_rest in REPORT_SECTIONS}
    assert ids == {
        "fig5", "fig6", "fig7", "fig8", "fig9",
        "table1", "table2", "fig10", "fig11",
    }


def test_generate_report(tmp_path):
    out = generate_report(tmp_path / "report.md")
    assert out.exists()
    text = out.read_text()
    for _exp_id, title, _fn, shape in REPORT_SECTIONS:
        assert title in text
        assert shape in text
    assert "Total experiment time" in text


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    assert main(["report", "--out", str(out)]) == 0
    assert out.exists()


def test_report_shim_warns_and_reexports():
    """The old module path warns but still exposes the same names."""
    import importlib
    import sys

    sys.modules.pop("repro.bench.report", None)
    with pytest.warns(DeprecationWarning, match="repro.bench.reporting"):
        shim = importlib.import_module("repro.bench.report")
    import repro.bench.reporting as reporting

    assert shim.generate_report is reporting.generate_report
    assert shim.render_rows is reporting.render_rows
    assert shim.REPORT_SECTIONS is reporting.REPORT_SECTIONS


def test_package_never_imports_the_deprecated_shim():
    """No internal module reaches `repro.bench.report` any more.

    Imports every module in the package in a clean interpreter with
    the shim's DeprecationWarning escalated to an error: if anything
    inside the package still imports the old path, this fails loudly.
    External users get the warning; the package itself must not.
    """
    import pkgutil
    import subprocess
    import sys
    from pathlib import Path

    import repro

    modules = sorted(
        name
        for _finder, name, _ispkg in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        )
        if not name.endswith("__main__")
    )
    assert "repro.bench.report" in modules  # the shim itself still ships
    importable = [name for name in modules if name != "repro.bench.report"]
    script = (
        "import warnings\n"
        "warnings.filterwarnings('error', message='repro.bench.report is "
        "deprecated.*')\n"
        "import importlib\n"
        + "".join(f"importlib.import_module({name!r})\n" for name in importable)
        + "print('CLEAN')\n"
    )
    src = Path(repro.__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "CLEAN" in result.stdout
