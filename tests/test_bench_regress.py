"""Perf-regression sentinel: history schema, rule evaluation, CI gate.

Exercises the full sentinel loop: ``write_bench_artifact`` appends a
validated entry to ``BENCH_HISTORY.jsonl``; :func:`check_history`
judges the newest entry per artifact against direction/tolerance
rules (absolute bounds plus a relative tolerance against the median of
the earlier entries); ``scripts/check_bench_regression.py`` turns the
verdicts into exit codes.  Ends by judging the repo's committed
history against :data:`DEFAULT_RULES` — the same check CI runs.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.reporting import write_bench_artifact
from repro.obs.regress import (
    DEFAULT_RULES,
    HISTORY_NAME,
    RegressionRule,
    append_bench_history,
    check_history,
    history_entry,
    load_history,
    metric_value,
    resolve_git_sha,
    validate_history_entry,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"


def entry(artifact, payload, ts, sha="cafebabe"):
    return history_entry(artifact, payload, git_sha=sha, ts=ts)


class TestHistorySchema:
    def test_roundtrip_append_and_load(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        first = append_bench_history(
            path, "BENCH_x.json", {"m": {"v": 1.0}}, git_sha="aaa", ts=10.0
        )
        second = append_bench_history(
            path, "BENCH_x.json", {"m": {"v": 2.0}}, git_sha="bbb", ts=20.0
        )
        loaded = load_history(path)
        assert loaded == [first, second]
        assert [e["git_sha"] for e in loaded] == ["aaa", "bbb"]

    def test_backend_label_is_lifted_from_the_payload(self):
        made = entry(
            "BENCH_kernels.json",
            {"split": {"speedup": 5.0, "backend_label": "numpy"}},
            ts=1.0,
        )
        assert made["backend_label"] == "numpy"
        plain = entry("BENCH_x.json", {"v": 1.0}, ts=1.0)
        assert plain["backend_label"] == ""

    def test_invalid_entries_are_rejected(self):
        good = entry("BENCH_x.json", {"v": 1.0}, ts=1.0)
        validate_history_entry(good)
        for corrupt in (
            {**good, "artifact": ""},
            {**good, "ts": -1.0},
            {**good, "ts": "yesterday"},
            {**good, "git_sha": ""},
            {**good, "payload": {}},
            {k: v for k, v in good.items() if k != "payload"},
            "not an object",
        ):
            with pytest.raises(ValueError):
                validate_history_entry(corrupt)

    def test_load_names_the_offending_line(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        path.write_text(
            json.dumps(entry("BENCH_x.json", {"v": 1.0}, ts=1.0)) + "\n"
            + "{not json\n"
        )
        with pytest.raises(ValueError, match=rf"{HISTORY_NAME}:2"):
            load_history(path)

    def test_resolve_git_sha_prefers_the_ci_env(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "feedface")
        assert resolve_git_sha() == "feedface"
        monkeypatch.delenv("GITHUB_SHA")
        # In this repo the fallback is a real rev-parse.
        assert resolve_git_sha(cwd=REPO_ROOT) not in ("", "unknown")

    def test_metric_value_resolves_dotted_paths(self):
        payload = {"a": {"b": 3}, "s": "str", "flag": True}
        assert metric_value(payload, "a.b") == 3.0
        assert metric_value(payload, "a.missing") is None
        assert metric_value(payload, "s") is None
        assert metric_value(payload, "flag") is None


class TestArtifactHistoryHookup:
    def test_write_appends_beside_the_artifact(self, tmp_path):
        out = tmp_path / "BENCH_demo.json"
        write_bench_artifact(out, {"m": {"v": 1.5}}, git_sha="abc", ts=5.0)
        assert json.loads(out.read_text()) == {"m": {"v": 1.5}}
        (made,) = load_history(tmp_path / HISTORY_NAME)
        assert made["artifact"] == "BENCH_demo.json"
        assert made["git_sha"] == "abc"
        assert made["payload"] == {"m": {"v": 1.5}}

    def test_explicit_history_path_and_false_skip(self, tmp_path):
        out = tmp_path / "BENCH_demo.json"
        elsewhere = tmp_path / "sub" / "hist.jsonl"
        elsewhere.parent.mkdir()
        write_bench_artifact(
            out, {"v": 1.0}, history=elsewhere, git_sha="abc", ts=5.0
        )
        assert len(load_history(elsewhere)) == 1
        assert not (tmp_path / HISTORY_NAME).exists()

        write_bench_artifact(out, {"v": 2.0}, history=False)
        assert not (tmp_path / HISTORY_NAME).exists()
        assert len(load_history(elsewhere)) == 1


RULE = RegressionRule(
    "BENCH_x.json", "m.v", "higher", floor=1.0, rel_tolerance=0.5
)


class TestCheckHistory:
    def test_steady_history_passes(self):
        entries = [
            entry("BENCH_x.json", {"m": {"v": 10.0 + i}}, ts=float(i + 1))
            for i in range(4)
        ]
        assert check_history(entries, [RULE]) == []

    def test_newest_is_judged_against_the_median_baseline(self):
        # Baseline = median(10, 11, 100) = 11; one freak earlier run
        # cannot move it, so 6.0 > 11 * 0.5 still passes ...
        entries = [
            entry("BENCH_x.json", {"m": {"v": v}}, ts=float(i + 1))
            for i, v in enumerate([10.0, 100.0, 11.0, 6.0])
        ]
        assert check_history(entries, [RULE]) == []
        # ... while a real slide below the tolerance fails.
        entries.append(entry("BENCH_x.json", {"m": {"v": 5.0}}, ts=9.0))
        failures = check_history(entries, [RULE])
        assert len(failures) == 1
        assert failures[0].startswith("BENCH_x.json:m.v:")
        assert "baseline" in failures[0]

    def test_absolute_floor_applies_without_any_baseline(self):
        entries = [entry("BENCH_x.json", {"m": {"v": 0.5}}, ts=1.0)]
        failures = check_history(entries, [RULE])
        assert failures == ["BENCH_x.json:m.v: 0.5 below absolute floor 1"]

    def test_lower_is_better_ceiling(self):
        rule = RegressionRule(
            "BENCH_x.json", "pct", "lower", ceiling=5.0, rel_tolerance=None
        )
        ok = [entry("BENCH_x.json", {"pct": 4.0}, ts=1.0)]
        assert check_history(ok, [rule]) == []
        bad = [entry("BENCH_x.json", {"pct": 7.5}, ts=1.0)]
        (failure,) = check_history(bad, [rule])
        assert "above absolute ceiling" in failure

    def test_lower_direction_relative_tolerance(self):
        rule = RegressionRule(
            "BENCH_x.json", "pct", "lower", rel_tolerance=0.5
        )
        entries = [
            entry("BENCH_x.json", {"pct": v}, ts=float(i + 1))
            for i, v in enumerate([2.0, 2.0, 2.9])
        ]
        assert check_history(entries, [rule]) == []
        entries.append(entry("BENCH_x.json", {"pct": 4.0}, ts=9.0))
        (failure,) = check_history(entries, [rule])
        assert "above baseline" in failure

    def test_missing_artifact_and_missing_metric_fail(self):
        assert check_history([], [RULE]) == [
            "BENCH_x.json:m.v: no history entries for BENCH_x.json"
        ]
        entries = [entry("BENCH_x.json", {"other": 1.0}, ts=1.0)]
        (failure,) = check_history(entries, [RULE])
        assert "metric missing from the newest entry" in failure

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            RegressionRule("BENCH_x.json", "m", "sideways")
        with pytest.raises(ValueError):
            RegressionRule("BENCH_x.json", "m", "higher", rel_tolerance=0.0)


def run_script(*argv):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True,
        text=True,
        timeout=60.0,
        cwd=REPO_ROOT,
    )


class TestSentinelScript:
    def write_history(self, tmp_path, values):
        path = tmp_path / HISTORY_NAME
        for i, value in enumerate(values):
            append_bench_history(
                path,
                "BENCH_kernels.json",
                {
                    "split": {"speedup": value},
                    "split_65536": {"scenarios_per_s": 1e6},
                    "filter": {"targets_per_s": 1e4},
                },
                git_sha="cafe",
                ts=float(i + 1),
            )
        return path

    def test_good_history_exits_zero(self, tmp_path):
        path = self.write_history(tmp_path, [20.0, 21.0, 19.5])
        # Other artifacts' rules fail (no entries) — restricting the
        # check to one artifact's rules needs the full repo history, so
        # this fixture covers only BENCH_kernels rules via the committed
        # repo check below; here assert the kernels verdicts directly.
        result = run_script("--history", str(path))
        assert "ok      BENCH_kernels.json:split.speedup" in result.stdout

    def test_injected_regression_fails(self, tmp_path):
        # Healthy baseline, then the tentpole acceptance fixture: a
        # collapse far beyond the relative tolerance and the floor.
        path = self.write_history(tmp_path, [20.0, 21.0, 19.5, 1.2])
        result = run_script("--history", str(path))
        assert result.returncode == 1
        assert "FAIL    BENCH_kernels.json:split.speedup" in result.stdout
        assert "below absolute floor" in result.stdout
        assert "regressed" in result.stdout

    def test_missing_history_exits_two(self, tmp_path):
        result = run_script("--history", str(tmp_path / "nope.jsonl"))
        assert result.returncode == 2
        assert "MISSING" in result.stdout

    def test_malformed_history_exits_one(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        path.write_text("{broken\n")
        result = run_script("--history", str(path))
        assert result.returncode == 1
        assert "INVALID" in result.stdout

    @pytest.mark.skipif(
        not (REPO_ROOT / HISTORY_NAME).is_file(),
        reason="no committed bench history at the repo root",
    )
    def test_committed_repo_history_passes_default_rules(self):
        """The same gate CI runs: the committed baseline must satisfy
        every default rule, or the commit that regressed it is the one
        that has to explain itself."""
        result = run_script()
        assert result.returncode == 0, result.stdout
        entries = load_history(REPO_ROOT / HISTORY_NAME)
        artifacts = {e["artifact"] for e in entries}
        assert {rule.artifact for rule in DEFAULT_RULES} <= artifacts
