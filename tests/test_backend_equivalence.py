"""Property tests pinning backend="bitset" byte-identical to the
pure-Python reference across the E stage, the EDP baseline and the
incremental matcher — including vague zones, the diversity rule, extra
(unobserved) universe EIDs, and live ``ScenarioStore.add`` after the
shared matrix was built."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accel import matrix_for
from repro.core.edp import EDPConfig, EDPMatcher
from repro.core.incremental import IncrementalMatcher
from repro.core.set_splitting import SelectionStrategy, SetSplitter, SplitConfig
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID


def eids(*indices):
    return frozenset(EID(i) for i in indices)


def make_scenario(cell, tick, inclusive, vague=()):
    key = ScenarioKey(cell_id=cell, tick=tick)
    return EVScenario(
        e=EScenario(
            key=key,
            inclusive=frozenset(EID(i) for i in inclusive),
            vague=frozenset(EID(i) for i in vague),
        ),
        v=VScenario(key=key, detections=()),
    )


#: One drawn scenario: (inclusive ids, vague ids, cell, tick).  Keys are
#: deduplicated at build time; vague is made disjoint from inclusive.
scenario_entries = st.lists(
    st.tuples(
        st.sets(st.integers(0, 9), min_size=1, max_size=6),
        st.sets(st.integers(0, 11), max_size=3),
        st.integers(0, 3),
        st.integers(0, 15),
    ),
    min_size=1,
    max_size=12,
)


def build_store(entries):
    scenarios = []
    seen_keys = set()
    for inclusive, vague, cell, tick in entries:
        if (cell, tick) in seen_keys:
            continue
        seen_keys.add((cell, tick))
        scenarios.append(
            make_scenario(cell, tick, inclusive, set(vague) - set(inclusive))
        )
    return ScenarioStore(scenarios)


def run_split(store, targets, universe, **cfg):
    splitter = SetSplitter(store, SplitConfig(**cfg))
    return splitter.run(targets, universe=universe)


def assert_splits_equal(a, b):
    assert a.recorded == b.recorded
    assert a.evidence == b.evidence
    assert a.candidates == b.candidates
    assert a.scenarios_examined == b.scenarios_examined


class TestSetSplitterEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        entries=scenario_entries,
        strategy=st.sampled_from(list(SelectionStrategy)),
        seed=st.integers(0, 3),
        gap=st.sampled_from([0, 3]),
        merge_vague=st.booleans(),
        add_extra=st.booleans(),
    )
    def test_bitset_equals_python(
        self, entries, strategy, seed, gap, merge_vague, add_extra
    ):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        if add_extra:
            universe = universe + [EID(99)]  # never observed: extras path
        targets = universe[:4]
        results = {}
        for backend in ("python", "bitset"):
            results[backend] = run_split(
                store,
                targets,
                universe,
                strategy=strategy,
                seed=seed,
                min_gap_ticks=gap,
                treat_vague_as_inclusive=merge_vague,
                backend=backend,
            )
        assert_splits_equal(results["python"], results["bitset"])

    @settings(max_examples=25, deadline=None)
    @given(
        entries=scenario_entries,
        strategy=st.sampled_from(
            [SelectionStrategy.SEQUENTIAL, SelectionStrategy.GREEDY]
        ),
    )
    def test_equivalence_survives_live_store_add(self, entries, strategy):
        """Adding scenarios after the shared matrix was built must keep
        both backends identical (the live-ingest path: matrix rows and
        interner ids are appended, never rebuilt)."""
        store = build_store(entries)
        matrix = matrix_for(store)  # built against the initial store
        pre_rows = len(matrix)
        store.add(make_scenario(7, 90, {0, 12}, {13}))
        store.add(make_scenario(7, 91, {12, 13}))
        universe = sorted(store.eid_universe)
        targets = universe[:4]
        kwargs = dict(strategy=strategy, min_gap_ticks=3)
        python = run_split(store, targets, universe, backend="python", **kwargs)
        bitset = run_split(store, targets, universe, backend="bitset", **kwargs)
        assert_splits_equal(python, bitset)
        assert len(matrix) == pre_rows + 2  # synced, not rebuilt

    def test_max_scenarios_budget_equivalence(self):
        store = build_store(
            [({0, 1, 2}, set(), 0, 0), ({0, 1}, {3}, 1, 5), ({0}, set(), 2, 9)]
        )
        universe = sorted(store.eid_universe)
        for budget in (1, 2):
            python = run_split(
                store,
                universe,
                universe,
                strategy=SelectionStrategy.SEQUENTIAL,
                max_scenarios=budget,
                backend="python",
            )
            bitset = run_split(
                store,
                universe,
                universe,
                strategy=SelectionStrategy.SEQUENTIAL,
                max_scenarios=budget,
                backend="bitset",
            )
            assert_splits_equal(python, bitset)


class TestEDPEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        entries=scenario_entries,
        seed=st.integers(0, 3),
        greedy_sample=st.sampled_from([1, 3]),
        gap=st.sampled_from([0, 3]),
        add_extra=st.booleans(),
    )
    def test_bitset_equals_python(
        self, entries, seed, greedy_sample, gap, add_extra
    ):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        if add_extra:
            universe = universe + [EID(99)]
        targets = universe[:4]
        results = {}
        for backend in ("python", "bitset"):
            edp = EDPMatcher(
                store,
                EDPConfig(
                    seed=seed,
                    greedy_sample=greedy_sample,
                    min_gap_ticks=gap,
                    backend=backend,
                ),
            )
            results[backend] = edp.run(targets, universe=universe)
        a, b = results["python"], results["bitset"]
        assert a.evidence == b.evidence
        assert a.candidates == b.candidates
        assert a.scenarios_examined == b.scenarios_examined


class TestIncrementalEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        entries=scenario_entries,
        gap=st.sampled_from([0, 3]),
        merge_vague=st.booleans(),
    )
    def test_bitset_equals_python(self, entries, gap, merge_vague):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        targets = universe[:4]
        states = {}
        for backend in ("python", "bitset"):
            inc = IncrementalMatcher(
                store,
                universe,
                split_config=SplitConfig(
                    min_gap_ticks=gap,
                    treat_vague_as_inclusive=merge_vague,
                    backend=backend,
                ),
            )
            inc.add_targets(targets)
            for key in store.keys:
                inc.observe(store.get(key))
            states[backend] = (
                inc.pending,
                {t: inc.evidence_of(t) for t in targets},
                {
                    t: (em.emitted_at_tick, em.scenarios_consumed)
                    for t, em in inc.emissions.items()
                },
            )
        assert states["python"] == states["bitset"]
