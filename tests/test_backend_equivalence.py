"""Property tests pinning every installed kernel backend byte-identical
to the pure-Python reference across the E stage, the EDP baseline and
the incremental matcher — including vague zones, the diversity rule,
extra (unobserved) universe EIDs, and live ``ScenarioStore.add`` syncs
mid-run — plus the backend-resolution rules (``auto``, the numba
fallback), the published accel gauges, the numba kernel's plain-Python
twin, and the batched V-stage against its pairwise reference."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accel import (
    AUTO_BACKEND,
    available_backends,
    best_available_backend,
    matrix_for,
    numba_available,
    resolve_backend,
)
from repro.core.edp import EDPConfig, EDPMatcher
from repro.core.incremental import IncrementalMatcher
from repro.core.set_splitting import SelectionStrategy, SetSplitter, SplitConfig
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID

#: Every backend this interpreter can run; "python" is always first,
#: so INSTALLED[1:] are the accelerated ones to compare against it.
INSTALLED = available_backends()


def eids(*indices):
    return frozenset(EID(i) for i in indices)


def make_scenario(cell, tick, inclusive, vague=()):
    key = ScenarioKey(cell_id=cell, tick=tick)
    return EVScenario(
        e=EScenario(
            key=key,
            inclusive=frozenset(EID(i) for i in inclusive),
            vague=frozenset(EID(i) for i in vague),
        ),
        v=VScenario(key=key, detections=()),
    )


#: One drawn scenario: (inclusive ids, vague ids, cell, tick).  Keys are
#: deduplicated at build time; vague is made disjoint from inclusive.
scenario_entries = st.lists(
    st.tuples(
        st.sets(st.integers(0, 9), min_size=1, max_size=6),
        st.sets(st.integers(0, 11), max_size=3),
        st.integers(0, 3),
        st.integers(0, 15),
    ),
    min_size=1,
    max_size=12,
)


def build_store(entries):
    scenarios = []
    seen_keys = set()
    for inclusive, vague, cell, tick in entries:
        if (cell, tick) in seen_keys:
            continue
        seen_keys.add((cell, tick))
        scenarios.append(
            make_scenario(cell, tick, inclusive, set(vague) - set(inclusive))
        )
    return ScenarioStore(scenarios)


def run_split(store, targets, universe, **cfg):
    splitter = SetSplitter(store, SplitConfig(**cfg))
    return splitter.run(targets, universe=universe)


def assert_splits_equal(a, b):
    assert a.recorded == b.recorded
    assert a.evidence == b.evidence
    assert a.candidates == b.candidates
    assert a.scenarios_examined == b.scenarios_examined


class TestSetSplitterEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        entries=scenario_entries,
        strategy=st.sampled_from(list(SelectionStrategy)),
        seed=st.integers(0, 3),
        gap=st.sampled_from([0, 3]),
        merge_vague=st.booleans(),
        add_extra=st.booleans(),
    )
    def test_bitset_equals_python(
        self, entries, strategy, seed, gap, merge_vague, add_extra
    ):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        if add_extra:
            universe = universe + [EID(99)]  # never observed: extras path
        targets = universe[:4]
        results = {
            backend: run_split(
                store,
                targets,
                universe,
                strategy=strategy,
                seed=seed,
                min_gap_ticks=gap,
                treat_vague_as_inclusive=merge_vague,
                backend=backend,
            )
            for backend in INSTALLED
        }
        for backend in INSTALLED[1:]:
            assert_splits_equal(results["python"], results[backend])

    @settings(max_examples=25, deadline=None)
    @given(
        entries=scenario_entries,
        strategy=st.sampled_from(
            [SelectionStrategy.SEQUENTIAL, SelectionStrategy.GREEDY]
        ),
    )
    def test_equivalence_survives_live_store_add(self, entries, strategy):
        """Adding scenarios after the shared matrix was built must keep
        every backend identical (the live-ingest path: matrix rows and
        interner ids are appended, never rebuilt)."""
        store = build_store(entries)
        matrix = matrix_for(store)  # built against the initial store
        pre_rows = len(matrix)
        store.add(make_scenario(7, 90, {0, 12}, {13}))
        store.add(make_scenario(7, 91, {12, 13}))
        universe = sorted(store.eid_universe)
        targets = universe[:4]
        kwargs = dict(strategy=strategy, min_gap_ticks=3)
        python = run_split(store, targets, universe, backend="python", **kwargs)
        for backend in INSTALLED[1:]:
            accel = run_split(store, targets, universe, backend=backend, **kwargs)
            assert_splits_equal(python, accel)
        assert len(matrix) == pre_rows + 2  # synced, not rebuilt

        # Another add *between* runs: the next run must sync again,
        # mid-session, and stay equivalent with the grown universe.
        store.add(make_scenario(6, 95, {0, 14}))
        universe = sorted(store.eid_universe)
        python = run_split(store, targets, universe, backend="python", **kwargs)
        for backend in INSTALLED[1:]:
            accel = run_split(store, targets, universe, backend=backend, **kwargs)
            assert_splits_equal(python, accel)
        assert len(matrix) == pre_rows + 3

    def test_max_scenarios_budget_equivalence(self):
        store = build_store(
            [({0, 1, 2}, set(), 0, 0), ({0, 1}, {3}, 1, 5), ({0}, set(), 2, 9)]
        )
        universe = sorted(store.eid_universe)
        for budget in (1, 2):
            python = run_split(
                store,
                universe,
                universe,
                strategy=SelectionStrategy.SEQUENTIAL,
                max_scenarios=budget,
                backend="python",
            )
            bitset = run_split(
                store,
                universe,
                universe,
                strategy=SelectionStrategy.SEQUENTIAL,
                max_scenarios=budget,
                backend="bitset",
            )
            assert_splits_equal(python, bitset)


class TestEDPEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        entries=scenario_entries,
        seed=st.integers(0, 3),
        greedy_sample=st.sampled_from([1, 3]),
        gap=st.sampled_from([0, 3]),
        add_extra=st.booleans(),
    )
    def test_bitset_equals_python(
        self, entries, seed, greedy_sample, gap, add_extra
    ):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        if add_extra:
            universe = universe + [EID(99)]
        targets = universe[:4]
        results = {}
        for backend in INSTALLED:
            edp = EDPMatcher(
                store,
                EDPConfig(
                    seed=seed,
                    greedy_sample=greedy_sample,
                    min_gap_ticks=gap,
                    backend=backend,
                ),
            )
            results[backend] = edp.run(targets, universe=universe)
        a = results["python"]
        for backend in INSTALLED[1:]:
            b = results[backend]
            assert a.evidence == b.evidence
            assert a.candidates == b.candidates
            assert a.scenarios_examined == b.scenarios_examined


class TestIncrementalEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        entries=scenario_entries,
        gap=st.sampled_from([0, 3]),
        merge_vague=st.booleans(),
    )
    def test_bitset_equals_python(self, entries, gap, merge_vague):
        store = build_store(entries)
        universe = sorted(store.eid_universe)
        targets = universe[:4]
        states = {}
        for backend in INSTALLED:
            inc = IncrementalMatcher(
                store,
                universe,
                split_config=SplitConfig(
                    min_gap_ticks=gap,
                    treat_vague_as_inclusive=merge_vague,
                    backend=backend,
                ),
            )
            inc.add_targets(targets)
            for key in store.keys:
                inc.observe(store.get(key))
            states[backend] = (
                inc.pending,
                {t: inc.evidence_of(t) for t in targets},
                {
                    t: (em.emitted_at_tick, em.scenarios_consumed)
                    for t, em in inc.emissions.items()
                },
            )
        for backend in INSTALLED[1:]:
            assert states["python"] == states[backend]


class TestBackendResolution:
    def test_auto_is_silent_and_picks_the_best(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(AUTO_BACKEND) == best_available_backend()

    def test_explicit_backends_resolve_to_themselves(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for backend in ("python", "bitset"):
                assert resolve_backend(backend) == backend

    @pytest.mark.skipif(
        numba_available(), reason="numba installed: no fallback to test"
    )
    def test_missing_numba_degrades_to_bitset_with_warning(self):
        with pytest.warns(RuntimeWarning, match="numba"):
            assert resolve_backend("numba") == "bitset"
        assert best_available_backend() == "bitset"
        assert "numba" not in INSTALLED

    @pytest.mark.skipif(
        not numba_available(), reason="numba not installed"
    )
    def test_numba_resolves_when_installed(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba") == "numba"
        assert best_available_backend() == "numba"
        assert "numba" in INSTALLED


class TestAccelGauges:
    def test_matrix_bytes_gauge_published(self):
        from repro.obs import get_registry

        store = build_store(
            [({0, 1, 2}, {3}, 0, 0), ({1, 4}, set(), 1, 2)]
        )
        matrix = matrix_for(store)
        matrix.sync()
        text = get_registry().render_prometheus()
        values = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("ev_accel_matrix_bytes ")
        ]
        assert values, "ev_accel_matrix_bytes gauge not published"
        assert values[-1] == matrix.nbytes

    def test_backend_info_gauge_published(self):
        from repro.obs import get_registry

        resolved = resolve_backend(AUTO_BACKEND)
        text = get_registry().render_prometheus()
        info_lines = [
            line
            for line in text.splitlines()
            if line.startswith("ev_accel_backend_info{")
        ]
        assert any(
            f'backend="{resolved}"' in line and line.endswith(" 1")
            for line in info_lines
        )
        presence = "present" if numba_available() else "absent"
        assert any(f'numba="{presence}"' in line for line in info_lines)


class TestNumbaTwinKernel:
    """The JIT kernel's plain-Python twin is the compiled function's
    executable specification: forcing the ``numba`` backend to run the
    uncompiled twin must still reproduce the reference exactly (same
    in-kernel diversity rule, budget, and singleton accounting)."""

    # The SWAR popcount multiply wraps mod 2^64 by design; numpy warns
    # about the overflow only when the twin runs uncompiled.
    @pytest.mark.filterwarnings(
        "ignore:overflow encountered:RuntimeWarning"
    )
    @settings(max_examples=20, deadline=None)
    @given(
        entries=scenario_entries,
        strategy=st.sampled_from(
            [SelectionStrategy.SEQUENTIAL, SelectionStrategy.GREEDY]
        ),
        gap=st.sampled_from([0, 3]),
        merge_vague=st.booleans(),
        budget=st.sampled_from([None, 2]),
    )
    def test_twin_kernel_equals_reference(
        self, entries, strategy, gap, merge_vague, budget
    ):
        from repro.core import accel, accel_numba

        store = build_store(entries)
        universe = sorted(store.eid_universe)
        targets = universe[:4]
        kwargs = dict(
            strategy=strategy,
            min_gap_ticks=gap,
            treat_vague_as_inclusive=merge_vague,
            max_scenarios=budget,
        )
        python = run_split(store, targets, universe, backend="python", **kwargs)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(accel, "numba_available", lambda: True)
            mp.setattr(
                accel_numba, "load_stream_pass",
                lambda: accel_numba.stream_pass,
            )
            twin = run_split(
                store, targets, universe, backend="numba", **kwargs
            )
        assert_splits_equal(python, twin)


class TestVStageBatchedEquivalence:
    """``FilterConfig(batched_scoring=True)`` — one stacked gram-matrix
    product per target — against the pairwise reference path."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.datagen.config import ExperimentConfig
        from repro.datagen.dataset import build_dataset

        return build_dataset(
            ExperimentConfig(
                num_people=80,
                cells_per_side=3,
                duration=400.0,
                seed=5,
            )
        )

    def test_batched_equals_pairwise(self, dataset):
        from repro.core.vid_filtering import FilterConfig, VIDFilter
        from repro.metrics.timing import SimulatedClock

        targets = list(dataset.sample_targets(12, seed=2))
        split = SetSplitter(
            dataset.store, SplitConfig(backend="bitset")
        ).run(targets)
        clock_ref, clock_batch = SimulatedClock(), SimulatedClock()
        pairwise = VIDFilter(
            dataset.store, FilterConfig(batched_scoring=False), clock_ref
        ).match(split.evidence)
        batched = VIDFilter(
            dataset.store, FilterConfig(batched_scoring=True), clock_batch
        ).match(split.evidence)
        assert any(not pairwise[t].is_empty for t in targets)
        for t in targets:
            a, b = pairwise[t], batched[t]
            assert a.scenario_keys == b.scenario_keys
            assert a.chosen == b.chosen
            assert a.agreement == b.agreement
            np.testing.assert_allclose(
                a.scores, b.scores, rtol=1e-5, atol=1e-12
            )
        # Identical simulated cost: the batched path charges the same
        # per-pair comparison count as the reference loop.
        assert clock_ref.comparisons == clock_batch.comparisons
