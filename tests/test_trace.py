"""Tests for trajectory generation and the TraceSet container."""

import numpy as np
import pytest

from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.trace import TraceSet, Trajectory, generate_traces
from repro.world.geometry import BoundingBox, Point

REGION = BoundingBox.square(300.0)


def small_traces(person_ids=(0, 1, 2), duration=100.0, dt=10.0, seed=0, warmup=0.0):
    model = RandomWaypoint(REGION)
    return generate_traces(
        model, person_ids=list(person_ids), duration=duration, dt=dt,
        seed=seed, warmup=warmup,
    )


class TestTrajectory:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(person_id=0, timestamps=(0.0, 1.0), points=(Point(0, 0),))

    def test_displacement_and_path_length(self):
        traj = Trajectory(
            person_id=0,
            timestamps=(0.0, 1.0, 2.0),
            points=(Point(0, 0), Point(3, 4), Point(3, 4)),
        )
        assert traj.displacement() == pytest.approx(5.0)
        assert traj.path_length() == pytest.approx(5.0)
        assert traj.position_at_index(1) == Point(3, 4)

    def test_single_point_trajectory(self):
        traj = Trajectory(person_id=0, timestamps=(0.0,), points=(Point(1, 1),))
        assert traj.displacement() == 0.0
        assert traj.path_length() == 0.0


class TestTraceSet:
    def test_requires_trajectories(self):
        with pytest.raises(ValueError):
            TraceSet([], dt=1.0)

    def test_rejects_mismatched_lengths(self):
        a = Trajectory(0, (0.0,), (Point(0, 0),))
        b = Trajectory(1, (0.0, 1.0), (Point(0, 0), Point(1, 1)))
        with pytest.raises(ValueError, match="differing lengths"):
            TraceSet([a, b], dt=1.0)

    def test_rejects_duplicate_person_ids(self):
        a = Trajectory(0, (0.0,), (Point(0, 0),))
        b = Trajectory(0, (0.0,), (Point(1, 1),))
        with pytest.raises(ValueError, match="duplicate"):
            TraceSet([a, b], dt=1.0)

    def test_positions_at(self):
        traces = small_traces()
        snapshot = traces.positions_at(0)
        assert set(snapshot.keys()) == {0, 1, 2}
        with pytest.raises(IndexError):
            traces.positions_at(traces.num_ticks)

    def test_trajectory_lookup(self):
        traces = small_traces()
        assert traces.trajectory(1).person_id == 1
        with pytest.raises(KeyError):
            traces.trajectory(99)


class TestGenerateTraces:
    def test_tick_count(self):
        traces = small_traces(duration=100.0, dt=10.0)
        assert traces.num_ticks == 11
        assert traces.timestamps[-1] == pytest.approx(100.0)

    def test_invalid_arguments(self):
        model = RandomWaypoint(REGION)
        with pytest.raises(ValueError):
            generate_traces(model, [0], duration=0.0)
        with pytest.raises(ValueError):
            generate_traces(model, [0], duration=10.0, dt=0.0)
        with pytest.raises(ValueError):
            generate_traces(model, [0], duration=10.0, warmup=-1.0)

    def test_all_points_in_region(self):
        traces = small_traces(duration=300.0, dt=5.0, seed=3)
        for traj in traces:
            for p in traj.points:
                assert REGION.contains(p)

    def test_deterministic(self):
        a = small_traces(seed=4)
        b = small_traces(seed=4)
        for pid in a.person_ids:
            assert a.trajectory(pid).points == b.trajectory(pid).points

    def test_per_person_substreams_independent(self):
        """Adding a person must not change existing people's paths."""
        a = small_traces(person_ids=(0, 1), seed=5)
        b = small_traces(person_ids=(0, 1, 2), seed=5)
        assert a.trajectory(0).points == b.trajectory(0).points
        assert a.trajectory(1).points == b.trajectory(1).points

    def test_warmup_changes_start(self):
        cold = small_traces(seed=6, warmup=0.0)
        warm = small_traces(seed=6, warmup=200.0)
        # After warmup the person has moved: starting point differs.
        assert cold.trajectory(0).points[0] != warm.trajectory(0).points[0]

    def test_people_actually_move(self):
        traces = small_traces(duration=400.0, dt=10.0, seed=7)
        moved = sum(1 for t in traces if t.path_length() > 10.0)
        assert moved >= 2
