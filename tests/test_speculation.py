"""Tests for skew, speculative execution and delay scheduling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.speculation import (
    SkewModel,
    StagePolicy,
    StageSimResult,
    simulate_stage,
)


class TestSkewModel:
    def test_zero_sigma_is_identity(self):
        model = SkewModel(sigma=0.0)
        assert model.factor("s", 0, 1) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SkewModel(sigma=-0.1)

    def test_deterministic(self):
        a = SkewModel(sigma=0.5, seed=1)
        b = SkewModel(sigma=0.5, seed=1)
        assert a.factor("stage", 3, 1) == b.factor("stage", 3, 1)

    def test_attempts_reroll(self):
        model = SkewModel(sigma=0.5, seed=1)
        assert model.factor("s", 0, 1) != model.factor("s", 0, 2)

    def test_mean_near_one(self):
        model = SkewModel(sigma=0.4, seed=2)
        factors = [model.factor("s", i, 1) for i in range(2000)]
        mean = sum(factors) / len(factors)
        assert 0.9 < mean < 1.1  # lognormal with mean-one correction

    def test_all_factors_positive(self):
        model = SkewModel(sigma=1.0, seed=3)
        assert all(model.factor("s", i, 1) > 0 for i in range(500))


class TestStagePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slots": 0},
            {"cores_per_node": 0},
            {"task_overhead": -1.0},
            {"speculation_margin": 0.0},
            {"locality_wait": -1.0},
            {"remote_read_penalty": -0.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StagePolicy(**kwargs)

    def test_node_of_slot(self):
        policy = StagePolicy(slots=8, cores_per_node=4)
        assert policy.node_of_slot(0) == 0
        assert policy.node_of_slot(3) == 0
        assert policy.node_of_slot(4) == 1


class TestSimulateStage:
    def test_empty_stage(self):
        result = simulate_stage([], StagePolicy())
        assert result.makespan == 0.0

    def test_no_skew_matches_list_scheduling(self):
        policy = StagePolicy(slots=2, task_overhead=0.0)
        result = simulate_stage([1.0, 1.0, 1.0, 1.0], policy)
        assert result.makespan == pytest.approx(2.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            simulate_stage([1.0, -1.0], StagePolicy())

    def test_placement_length_checked(self):
        with pytest.raises(ValueError, match="placements"):
            simulate_stage([1.0], StagePolicy(), placements=[0, 1])

    def test_speculation_cuts_straggler_tail(self):
        """With heavy skew, speculation must not hurt and should help
        the straggler-dominated makespan."""
        costs = [1.0] * 40
        base = StagePolicy(slots=8, skew=SkewModel(sigma=0.8, seed=5))
        spec = StagePolicy(
            slots=8, skew=SkewModel(sigma=0.8, seed=5), speculate=True
        )
        plain = simulate_stage(costs, base, "stage")
        helped = simulate_stage(costs, spec, "stage")
        assert helped.speculative_copies > 0
        assert helped.makespan <= plain.makespan
        assert helped.wasted_work > 0  # losers burned real slot time

    def test_speculation_noop_without_skew(self):
        costs = [1.0] * 8
        policy = StagePolicy(slots=8, speculate=True, task_overhead=0.0)
        result = simulate_stage(costs, policy)
        # Perfectly uniform tasks: a copy can never plausibly win.
        assert result.speculative_copies == 0
        assert result.makespan == pytest.approx(1.0)

    def test_effective_finish_is_min_of_copies(self):
        # One giant straggler among quick tasks: its backup copy should
        # finish long before the skewed original.
        costs = [0.1] * 7 + [100.0]
        policy = StagePolicy(
            slots=4,
            skew=SkewModel(sigma=1.5, seed=11),
            speculate=True,
            task_overhead=0.0,
        )
        plain = simulate_stage(costs, StagePolicy(slots=4, skew=SkewModel(sigma=1.5, seed=11), task_overhead=0.0))
        helped = simulate_stage(costs, policy)
        assert helped.makespan <= plain.makespan

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_speculation_never_increases_makespan(self, seed):
        costs = [float((seed % 7) + 1)] * 20
        skew = SkewModel(sigma=0.6, seed=seed)
        plain = simulate_stage(costs, StagePolicy(slots=5, skew=skew))
        spec = simulate_stage(
            costs, StagePolicy(slots=5, skew=skew, speculate=True)
        )
        assert spec.makespan <= plain.makespan + 1e-9


class TestDelayScheduling:
    def test_local_placement_avoids_penalty(self):
        # 2 nodes x 2 slots; every task's data on node 0; generous wait.
        policy = StagePolicy(
            slots=4,
            cores_per_node=2,
            task_overhead=0.0,
            locality_wait=10.0,
            remote_read_penalty=5.0,
        )
        result = simulate_stage(
            [1.0] * 4, policy, placements=[0, 0, 0, 0]
        )
        assert result.local_tasks == 4
        assert result.remote_tasks == 0
        # All four ran on node 0's two slots: two waves.
        assert result.makespan == pytest.approx(2.0)

    def test_zero_wait_goes_remote(self):
        policy = StagePolicy(
            slots=4,
            cores_per_node=2,
            task_overhead=0.0,
            locality_wait=0.0,
            remote_read_penalty=5.0,
        )
        result = simulate_stage([1.0] * 4, policy, placements=[0, 0, 0, 0])
        assert result.remote_tasks > 0
        # Remote tasks paid the read penalty.
        assert result.makespan > 2.0

    def test_balanced_placement_all_local(self):
        policy = StagePolicy(
            slots=4,
            cores_per_node=2,
            task_overhead=0.0,
            locality_wait=1.0,
            remote_read_penalty=5.0,
        )
        result = simulate_stage([1.0] * 4, policy, placements=[0, 0, 1, 1])
        assert result.local_tasks == 4
        assert result.makespan == pytest.approx(1.0)

    def test_wait_tradeoff(self):
        """Delay scheduling trades waiting for locality: with a huge
        penalty, waiting wins; the simulation reflects the policy."""
        placements = [0] * 8
        common = dict(slots=4, cores_per_node=2, task_overhead=0.0,
                      remote_read_penalty=20.0)
        waiting = simulate_stage(
            [1.0] * 8, StagePolicy(locality_wait=100.0, **common), placements=placements
        )
        eager = simulate_stage(
            [1.0] * 8, StagePolicy(locality_wait=0.0, **common), placements=placements
        )
        assert waiting.makespan < eager.makespan


class TestClusterIntegration:
    def test_simulate_falls_back_to_schedule(self):
        from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster

        cluster = SimulatedCluster(ClusterConfig(num_nodes=2, cores_per_node=2))
        plain = cluster.schedule([1.0] * 4)
        sim = cluster.simulate([1.0] * 4, "s")
        assert sim.makespan == pytest.approx(plain.makespan)

    def test_engine_reports_speculation(self):
        from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.job import MapReduceJob

        engine = MapReduceEngine(
            cluster=SimulatedCluster(
                ClusterConfig(
                    num_nodes=2,
                    cores_per_node=2,
                    skew_sigma=0.8,
                    speculate=True,
                    task_overhead=0.0,
                )
            )
        )
        engine.dfs.write_records("xs", list(range(32)), num_partitions=32)
        job = MapReduceJob(name="spec", mapper=lambda x: (x,), map_cost=lambda x: 1.0)
        _, metrics = engine.run(job, "xs", "ys")
        assert metrics.map_stats.speculative_copies > 0

    def test_engine_reports_locality(self):
        from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.job import MapReduceJob

        engine = MapReduceEngine(
            cluster=SimulatedCluster(
                ClusterConfig(
                    num_nodes=2,
                    cores_per_node=2,
                    locality_wait=10.0,
                    remote_read_penalty=3.0,
                    task_overhead=0.0,
                )
            )
        )
        # DFS round-robins blocks over its nodes; with matching node
        # counts, delay scheduling keeps every map task local.
        engine.dfs.write_records("xs", list(range(8)), num_partitions=8)
        job = MapReduceJob(name="loc", mapper=lambda x: (x,), map_cost=lambda x: 1.0)
        _, metrics = engine.run(job, "xs", "ys")
        assert metrics.map_stats.local_tasks == 8
        assert metrics.map_stats.remote_tasks == 0

    def test_invalid_cluster_knobs(self):
        from repro.mapreduce.cluster import ClusterConfig

        with pytest.raises(ValueError):
            ClusterConfig(skew_sigma=-1.0)
        with pytest.raises(ValueError):
            ClusterConfig(locality_wait=-1.0)
