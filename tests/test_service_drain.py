"""Graceful-shutdown tests for the single-process service.

The drain contract: once :meth:`MatchService.begin_drain` runs, new
submits shed immediately — but every request accepted *before* the
drain began still resolves with a real answer.  ``repro serve`` wires
this to SIGINT/SIGTERM via :func:`repro.cli._drain_on_signals`.
"""

import io
import signal
import threading

import pytest

from repro.cli import _drain_on_signals
from repro.obs import EventLog, set_event_log
from repro.service import MatchService, ServiceConfig
from repro.service.api import (
    STATUS_OK,
    STATUS_SHED,
    InvestigateRequest,
    MatchRequest,
)


@pytest.fixture()
def event_log():
    log = EventLog()
    previous = set_event_log(log)
    yield log
    set_event_log(previous)


@pytest.fixture()
def service(ideal_dataset):
    # One worker and no cache: submits genuinely queue, so the drain
    # has in-flight work to prove itself on.
    svc = MatchService.from_dataset(
        ideal_dataset,
        ServiceConfig(workers=1, queue_size=64, cache_capacity=0),
    ).start()
    yield svc
    svc.stop()


def distinct_requests(ideal_dataset, count: int):
    eids = list(ideal_dataset.eids)
    return [
        MatchRequest(targets=(eids[2 * i], eids[2 * i + 1]))
        for i in range(count)
    ]


class TestBeginDrain:
    def test_sheds_new_submits(self, service, ideal_dataset):
        service.begin_drain()
        assert service.draining
        match = service.submit(
            MatchRequest(targets=(ideal_dataset.eids[0],))
        ).result(timeout=5)
        assert match.status == STATUS_SHED
        investigate = service.submit(
            InvestigateRequest(eid=ideal_dataset.eids[1])
        ).result(timeout=5)
        assert investigate.status == STATUS_SHED
        assert investigate.eid == ideal_dataset.eids[1]

    def test_emits_drain_started_once(self, service, event_log):
        service.begin_drain()
        service.begin_drain()  # idempotent
        started = [
            event
            for event in event_log.events()
            if event["type"] == "service.drain.started"
        ]
        assert len(started) == 1


class TestDrain:
    def test_accepted_requests_all_resolve(
        self, service, ideal_dataset, event_log
    ):
        futures = [
            service.submit(request)
            for request in distinct_requests(ideal_dataset, 8)
        ]
        summary = service.drain(timeout=30.0)
        # Every request accepted before the drain resolves ok — none
        # shed, none abandoned.
        for future in futures:
            response = future.result(timeout=30)
            assert response.status == STATUS_OK
        assert summary["drained"] is True
        assert summary["duration_s"] > 0
        types = [event["type"] for event in event_log.events()]
        assert "service.drain.started" in types
        assert "service.drain.completed" in types
        assert types.index("service.drain.started") < types.index(
            "service.drain.completed"
        )

    def test_post_drain_submits_shed_not_crash(self, service, ideal_dataset):
        service.drain(timeout=30.0)
        response = service.submit(
            MatchRequest(targets=(ideal_dataset.eids[0],))
        ).result(timeout=5)
        assert response.status == STATUS_SHED


class TestSignalHandling:
    def test_first_signal_drains_second_interrupts(self):
        calls = []
        out = io.StringIO()
        before = signal.getsignal(signal.SIGINT)
        with _drain_on_signals(lambda: calls.append("drain"), out):
            signal.raise_signal(signal.SIGINT)
            assert calls == ["drain"]
            assert "draining" in out.getvalue()
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
        # handlers restored on exit
        assert signal.getsignal(signal.SIGINT) is before

    def test_sigterm_also_drains(self):
        calls = []
        with _drain_on_signals(lambda: calls.append("drain"), io.StringIO()):
            signal.raise_signal(signal.SIGTERM)
        assert calls == ["drain"]

    def test_noop_off_main_thread(self):
        results = {}

        def run():
            with _drain_on_signals(lambda: None, io.StringIO()) as fired:
                results["fired"] = fired

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=10)
        assert results["fired"] == {"drained": False}
