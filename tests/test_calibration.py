"""Tests for confidence calibration."""

import numpy as np
import pytest

from repro.core.matcher import EVMatcher
from repro.core.vid_filtering import MatchResult
from repro.metrics.calibration import calibration_report
from repro.sensing.scenarios import Detection
from repro.world.entities import EID, VID


def result(eid_index, agreement, chosen_vid, k=3, correct_votes=None):
    """A synthetic MatchResult with a controllable majority."""
    votes = correct_votes if correct_votes is not None else k
    chosen = tuple(
        Detection(
            detection_id=eid_index * 100 + i,
            feature=np.zeros(2),
            true_vid=VID(chosen_vid if i < votes else 10_000 + i),
        )
        for i in range(k)
    )
    return MatchResult(
        eid=EID(eid_index),
        scenario_keys=(),
        chosen=chosen,
        scores=(1.0,) * k,
        agreement=agreement,
    )


class TestCalibrationReport:
    def test_perfectly_calibrated(self):
        # agreement 1.0 matches are all correct; agreement 0.0 all wrong.
        results = {}
        truth = {}
        for i in range(10):
            results[EID(i)] = result(i, 1.0, chosen_vid=i)
            truth[EID(i)] = VID(i)
        for i in range(10, 20):
            results[EID(i)] = result(i, 0.05, chosen_vid=999, correct_votes=0)
            truth[EID(i)] = VID(i)
        report = calibration_report(results, truth, num_buckets=4)
        assert report.total == 20
        assert report.expected_calibration_error < 0.1
        top = report.buckets[-1]
        assert top.count == 10 and top.precision == 1.0
        bottom = report.buckets[0]
        assert bottom.count == 10 and bottom.precision == 0.0

    def test_miscalibration_detected(self):
        # Confident but always wrong: ECE near 1.
        results = {
            EID(i): result(i, 0.95, chosen_vid=999, correct_votes=0)
            for i in range(8)
        }
        truth = {EID(i): VID(i) for i in range(8)}
        report = calibration_report(results, truth)
        assert report.expected_calibration_error > 0.8

    def test_threshold_tradeoff(self):
        results = {}
        truth = {}
        for i in range(6):
            results[EID(i)] = result(i, 0.95, chosen_vid=i)
            truth[EID(i)] = VID(i)
        for i in range(6, 10):
            results[EID(i)] = result(i, 0.30, chosen_vid=999, correct_votes=0)
            truth[EID(i)] = VID(i)
        report = calibration_report(results, truth)
        precision, coverage = report.precision_at_threshold(0.8)
        assert precision == 1.0
        assert coverage == pytest.approx(0.6)
        precision_all, coverage_all = report.precision_at_threshold(0.0)
        assert coverage_all == 1.0
        assert precision_all == pytest.approx(0.6)

    def test_empty_threshold(self):
        results = {EID(0): result(0, 0.2, chosen_vid=0)}
        truth = {EID(0): VID(0)}
        report = calibration_report(results, truth)
        assert report.precision_at_threshold(0.99) == (0.0, 0.0)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            calibration_report({}, {}, num_buckets=0)

    def test_on_real_run_agreement_is_informative(self, ideal_dataset):
        """On a real run, high-agreement matches must be at least as
        precise as low-agreement ones — the property triage relies on."""
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(60, seed=3))
        report = matcher.match(targets)
        calibration = calibration_report(
            report.results, ideal_dataset.truth, num_buckets=4
        )
        occupied = [b for b in calibration.buckets if b.count > 2]
        if len(occupied) >= 2:
            # Small-sample noise allows slight inversions; triage only
            # needs the top band not to be materially worse.
            assert occupied[-1].precision >= occupied[0].precision - 0.1
        precision, coverage = calibration.precision_at_threshold(0.75)
        assert precision >= 0.85
        assert coverage > 0.5
