"""Slow-query exemplars: SlowQueryLog policy + MatchService wiring.

Unit-level: thresholding modes (fixed / adaptive / warming / disabled),
bounded retention, span-tree serialization budgets.  Integration-level:
a live :class:`MatchService` with an artificial per-request delay and a
tiny fixed threshold must capture real exemplars carrying the span
tree, kernel-counter deltas, trace id and backend label the ``slowlog``
verb ships outward.
"""

import json

import pytest

from repro.obs.events import EventLog, set_event_log
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.slowlog import (
    MAX_SPANS_PER_RECORD,
    SLOW_QUERIES_METRIC,
    SlowLogConfig,
    SlowQueryLog,
    serialize_span_tree,
)
from repro.obs.tracing import Tracer, set_tracer
from repro.service.server import MatchService, ServiceConfig, STATUS_OK


@pytest.fixture()
def fresh_obs():
    """Isolated registry + tracer + event log for one test."""
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    tracer = Tracer()
    previous_tracer = set_tracer(tracer)
    log = EventLog()
    previous_log = set_event_log(log)
    yield registry, tracer, log
    set_registry(previous_registry)
    set_tracer(previous_tracer)
    set_event_log(previous_log)


class TestThresholding:
    def test_fixed_threshold_captures_over_and_not_under(self, fresh_obs):
        slowlog = SlowQueryLog(SlowLogConfig(threshold_s=0.1))
        assert slowlog.threshold() == 0.1
        assert not slowlog.consider(
            endpoint="match", latency_s=0.05, status=STATUS_OK
        )
        assert slowlog.consider(
            endpoint="match", latency_s=0.15, status=STATUS_OK
        )
        assert slowlog.captured == 1
        assert slowlog.considered == 2
        registry, _, _ = fresh_obs
        assert registry.counter(SLOW_QUERIES_METRIC).total() == 1

    def test_adaptive_threshold_tracks_the_p99(self):
        p99 = [None]
        slowlog = SlowQueryLog(
            SlowLogConfig(adaptive_factor=3.0, min_threshold_s=0.005),
            p99_source=lambda: p99[0],
        )
        # Warming: no p99 yet -> capture nothing, however slow.
        assert slowlog.threshold() is None
        assert not slowlog.consider(
            endpoint="match", latency_s=10.0, status=STATUS_OK
        )
        # Window filled: threshold = factor * p99 ...
        p99[0] = 0.04
        assert slowlog.threshold() == pytest.approx(0.12)
        # ... clamped below by min_threshold_s for tiny p99s.
        p99[0] = 0.0001
        assert slowlog.threshold() == pytest.approx(0.005)

    def test_adaptive_without_a_source_captures_nothing(self):
        slowlog = SlowQueryLog(SlowLogConfig())
        assert slowlog.threshold() is None
        assert not slowlog.consider(
            endpoint="match", latency_s=99.0, status=STATUS_OK
        )

    def test_disabled_config_captures_nothing(self, fresh_obs):
        slowlog = SlowQueryLog(
            SlowLogConfig(threshold_s=0.001, enabled=False)
        )
        assert slowlog.threshold() is None
        assert not slowlog.consider(
            endpoint="match", latency_s=1.0, status=STATUS_OK
        )
        assert slowlog.describe()["enabled"] is False

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SlowLogConfig(capacity=0)
        with pytest.raises(ValueError):
            SlowLogConfig(threshold_s=0.0)
        with pytest.raises(ValueError):
            SlowLogConfig(adaptive_factor=0.5)
        with pytest.raises(ValueError):
            SlowLogConfig(min_threshold_s=-1.0)


class TestRetention:
    def test_ring_is_bounded_and_newest_first(self, fresh_obs):
        slowlog = SlowQueryLog(SlowLogConfig(capacity=3, threshold_s=0.01))
        for i in range(5):
            slowlog.consider(
                endpoint="match",
                latency_s=0.02,
                status=STATUS_OK,
                detail={"seq": i},
            )
        records = slowlog.records()
        assert len(records) == len(slowlog) == 3
        assert [r["detail"]["seq"] for r in records] == [4, 3, 2]
        assert [r["detail"]["seq"] for r in slowlog.records(limit=2)] == [4, 3]
        assert slowlog.captured == 5  # evictions do not uncount captures

    def test_describe_summary_shape(self, fresh_obs):
        slowlog = SlowQueryLog(SlowLogConfig(threshold_s=0.5))
        slowlog.consider(endpoint="match", latency_s=0.1, status=STATUS_OK)
        slowlog.consider(endpoint="match", latency_s=0.9, status=STATUS_OK)
        assert slowlog.describe() == {
            "enabled": True,
            "mode": "fixed",
            "threshold_s": 0.5,
            "retained": 1,
            "captured": 1,
            "considered": 2,
        }


class TestSpanSerialization:
    def test_span_tree_round_trips_as_json(self, fresh_obs):
        _, tracer, _ = fresh_obs
        with tracer.span("service.execute", batch=2) as root:
            with tracer.span("match"):
                with tracer.span("e.split", backend="python"):
                    pass
        tree = serialize_span_tree(root)
        assert tree["name"] == "service.execute"
        assert tree["args"] == {"batch": 2}
        (match_node,) = tree["children"]
        assert match_node["name"] == "match"
        (split_node,) = match_node["children"]
        assert split_node["name"] == "e.split"
        assert split_node["args"]["backend"] == "python"
        assert split_node["dur_ms"] >= 0.0
        json.dumps(tree)  # wire-safe

    def test_span_budget_elides_sibling_floods(self, fresh_obs):
        _, tracer, _ = fresh_obs
        with tracer.span("root") as root:
            for i in range(MAX_SPANS_PER_RECORD + 40):
                with tracer.span(f"child-{i}"):
                    pass
        tree = serialize_span_tree(root)
        kept = len(tree.get("children", []))
        assert kept < MAX_SPANS_PER_RECORD + 40
        assert tree["elided"] == (MAX_SPANS_PER_RECORD + 40) - kept
        # Budget counts nodes, not depth: root + kept == budget.
        assert kept + 1 == MAX_SPANS_PER_RECORD

    def test_none_span_serializes_to_none(self):
        assert serialize_span_tree(None) is None


class TestServiceWiring:
    @pytest.fixture()
    def slow_service(self, ideal_dataset, fresh_obs):
        svc = MatchService.from_dataset(
            ideal_dataset,
            ServiceConfig(
                workers=1,
                worker_delay_s=0.02,
                slowlog=SlowLogConfig(capacity=8, threshold_s=0.001),
            ),
        )
        svc.start()
        yield svc
        svc.stop()

    def test_slow_match_is_captured_with_full_context(
        self, ideal_dataset, slow_service, fresh_obs
    ):
        _, tracer, _ = fresh_obs
        targets = list(ideal_dataset.sample_targets(3, seed=11))
        # Submit under an active span: untraced requests open no
        # service.execute span, so the exemplar's tree would be None
        # (exactly what the worker's per-request span provides in a
        # cluster).
        with tracer.span("request"):
            response = slow_service.match(targets)
        assert response.status == STATUS_OK

        records = slow_service.slow_queries.records()
        match_records = [r for r in records if r["endpoint"] == "match"]
        assert match_records, f"no match exemplar captured: {records}"
        record = match_records[0]
        assert record["latency_s"] >= record["threshold_s"] == 0.001
        assert record["status"] == STATUS_OK
        # Standalone services have no distributed trace id (the gateway
        # mints one per cluster request); the key is still present so
        # the record joins against merged traces when there is one.
        assert "trace_id" in record
        assert record["backend_label"] == (
            slow_service.config.matcher.split.backend
        )
        assert set(record["detail"]) == {
            "targets", "algorithm", "batched_with", "cached",
        }
        assert record["detail"]["algorithm"] == "ss"
        # Kernel-counter deltas: the match examined real scenarios.
        assert record["counters"]["scenarios_examined"] > 0
        # The span tree is the serving-side execute subtree.
        spans = record["spans"]
        assert spans["name"] == "service.execute"
        assert spans["args"]["endpoint"] == "match"

        def names(node):
            yield node["name"]
            for child in node.get("children", ()):
                yield from names(child)

        assert "e.split" in set(names(spans))
        json.dumps(record)  # the verb ships this verbatim

    def test_investigate_is_captured_too(self, ideal_dataset, slow_service):
        eid = next(iter(ideal_dataset.sample_targets(1, seed=12)))
        response = slow_service.investigate(eid, min_shared=2)
        assert response.status == STATUS_OK
        records = [
            r
            for r in slow_service.slow_queries.records()
            if r["endpoint"] == "investigate"
        ]
        assert records
        assert records[0]["detail"] == {
            "eid": eid.index, "min_shared": 2,
        }

    def test_service_slowlog_envelope(self, ideal_dataset, slow_service):
        targets = list(ideal_dataset.sample_targets(2, seed=13))
        slow_service.match(targets)
        payload = slow_service.slowlog(limit=4)
        assert payload["enabled"] is True
        assert payload["mode"] == "fixed"
        assert payload["captured"] >= 1
        assert payload["considered"] >= 1
        assert len(payload["records"]) <= 4
        assert payload["records"][0]["endpoint"] in ("match", "investigate")
        json.dumps(payload)

    def test_default_config_is_adaptive_and_warming_captures_nothing(
        self, ideal_dataset, fresh_obs
    ):
        svc = MatchService.from_dataset(
            ideal_dataset, ServiceConfig(workers=1)
        )
        svc.start()
        try:
            targets = list(ideal_dataset.sample_targets(2, seed=14))
            svc.match(targets)
            summary = svc.slowlog()
            assert summary["mode"] == "adaptive"
            # One request cannot fill the p99 window (min_samples).
            assert summary["threshold_s"] is None
            assert summary["records"] == []
        finally:
            svc.stop()
