"""Tests for the MapReduce infrastructure: failures, storage, shuffle."""

import pytest

from repro.mapreduce.failures import (
    FailureInjector,
    FailurePolicy,
    InjectedTaskFailure,
)
from repro.mapreduce.shuffle import (
    HashPartitioner,
    RangePartitioner,
    bucket_pairs,
    merge_buckets,
)
from repro.mapreduce.storage import InMemoryDFS


class TestFailurePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [{"failure_rate": 1.0}, {"failure_rate": -0.1}, {"max_attempts": 0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FailurePolicy(**kwargs)


class TestFailureInjector:
    def test_zero_rate_never_fails(self):
        injector = FailureInjector(FailurePolicy(failure_rate=0.0))
        assert not any(
            injector.should_fail("job", task, attempt)
            for task in range(50)
            for attempt in range(1, 4)
        )

    def test_deterministic(self):
        a = FailureInjector(FailurePolicy(failure_rate=0.3, seed=1))
        b = FailureInjector(FailurePolicy(failure_rate=0.3, seed=1))
        decisions_a = [a.should_fail("j", t, 1) for t in range(100)]
        decisions_b = [b.should_fail("j", t, 1) for t in range(100)]
        assert decisions_a == decisions_b

    def test_seed_changes_decisions(self):
        a = FailureInjector(FailurePolicy(failure_rate=0.5, seed=1))
        b = FailureInjector(FailurePolicy(failure_rate=0.5, seed=2))
        decisions_a = [a.should_fail("j", t, 1) for t in range(200)]
        decisions_b = [b.should_fail("j", t, 1) for t in range(200)]
        assert decisions_a != decisions_b

    def test_rate_statistics(self):
        injector = FailureInjector(FailurePolicy(failure_rate=0.25, seed=3))
        failures = sum(
            injector.should_fail("j", t, a) for t in range(500) for a in (1, 2)
        )
        assert 180 < failures < 320  # ~250 expected

    def test_check_raises(self):
        injector = FailureInjector(FailurePolicy(failure_rate=0.999999, seed=4))
        with pytest.raises(InjectedTaskFailure) as exc:
            for t in range(100):
                injector.check("job", t, 1)
        assert exc.value.job_id == "job"


class TestInMemoryDFS:
    def test_write_and_read(self):
        dfs = InMemoryDFS(num_nodes=3)
        handle = dfs.write("a", [[1, 2], [3]])
        assert handle.num_partitions == 2
        assert handle.num_records == 3
        assert dfs.read_partition("a", 0) == (1, 2)
        assert dfs.read_all("a") == [1, 2, 3]

    def test_write_records_round_robin(self):
        dfs = InMemoryDFS()
        dfs.write_records("a", list(range(7)), num_partitions=3)
        assert dfs.num_partitions("a") == 3
        assert dfs.read_partition("a", 0) == (0, 3, 6)

    def test_datasets_immutable_names(self):
        dfs = InMemoryDFS()
        dfs.write("a", [[1]])
        with pytest.raises(ValueError, match="already exists"):
            dfs.write("a", [[2]])

    def test_delete(self):
        dfs = InMemoryDFS()
        dfs.write("a", [[1]])
        dfs.delete("a")
        assert not dfs.exists("a")
        with pytest.raises(KeyError):
            dfs.delete("a")

    def test_block_placement_round_robin(self):
        dfs = InMemoryDFS(num_nodes=2)
        dfs.write("a", [[1], [2], [3]])
        assert [dfs.node_of("a", i) for i in range(3)] == [0, 1, 0]

    def test_missing_dataset_raises(self):
        dfs = InMemoryDFS()
        with pytest.raises(KeyError):
            dfs.read_all("nope")
        with pytest.raises(KeyError):
            dfs.node_of("nope", 0)

    def test_partition_index_bounds(self):
        dfs = InMemoryDFS()
        dfs.write("a", [[1]])
        with pytest.raises(IndexError):
            dfs.read_partition("a", 5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InMemoryDFS(num_nodes=0)
        dfs = InMemoryDFS()
        with pytest.raises(ValueError):
            dfs.write_records("a", [1], num_partitions=0)

    def test_datasets_listing(self):
        dfs = InMemoryDFS()
        dfs.write("b", [[1]])
        dfs.write("a", [[2]])
        assert dfs.datasets() == ("a", "b")


class TestPartitioners:
    def test_hash_partitioner_stable(self):
        p = HashPartitioner(8)
        assert p.partition(("eid", 5)) == p.partition(("eid", 5))
        assert 0 <= p.partition("anything") < 8

    def test_hash_partitioner_spreads_keys(self):
        p = HashPartitioner(8)
        buckets = {p.partition(i) for i in range(200)}
        assert len(buckets) == 8

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_range_partitioner(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(10) == 0
        assert p.partition(15) == 1
        assert p.partition(99) == 2


class TestBucketing:
    def test_bucket_and_merge_roundtrip(self):
        p = HashPartitioner(4)
        pairs = [(k, k * 10) for k in range(20)]
        task_a = bucket_pairs(pairs[:10], p)
        task_b = bucket_pairs(pairs[10:], p)
        seen = {}
        for reducer in range(4):
            grouped = merge_buckets([task_a, task_b], reducer)
            for key, values in grouped.items():
                seen[key] = values
        assert seen == {k: [k * 10] for k in range(20)}

    def test_values_grouped_per_key(self):
        p = HashPartitioner(1)
        buckets = bucket_pairs([("a", 1), ("a", 2), ("b", 3)], p)
        grouped = merge_buckets([buckets], 0)
        assert grouped == {"a": [1, 2], "b": [3]}
