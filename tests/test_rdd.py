"""Tests for the Spark-like RDD layer and its lineage compiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.context import EVSparkContext
from repro.mapreduce.engine import MapReduceEngine


@pytest.fixture
def sc():
    return EVSparkContext(default_partitions=4)


class TestCreation:
    def test_parallelize_and_collect(self, sc):
        rdd = sc.parallelize(range(10))
        assert sorted(rdd.collect()) == list(range(10))
        assert rdd.num_partitions() == 4

    def test_parallelize_custom_partitions(self, sc):
        rdd = sc.parallelize(range(10), num_partitions=2)
        assert rdd.num_partitions() == 2

    def test_from_dataset(self, sc):
        sc.engine.dfs.write("data", [[1, 2], [3]])
        assert sorted(sc.from_dataset("data").collect()) == [1, 2, 3]
        with pytest.raises(KeyError):
            sc.from_dataset("missing")

    def test_invalid_default_partitions(self):
        with pytest.raises(ValueError):
            EVSparkContext(default_partitions=0)


class TestNarrowOps:
    def test_map(self, sc):
        assert sorted(sc.parallelize([1, 2, 3]).map(lambda x: x * 2).collect()) == [2, 4, 6]

    def test_filter(self, sc):
        assert sorted(
            sc.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        ) == [0, 2, 4, 6, 8]

    def test_flatMap(self, sc):
        assert sorted(
            sc.parallelize([1, 2]).flatMap(lambda x: [x] * x).collect()
        ) == [1, 2, 2]

    def test_keyBy_and_mapValues(self, sc):
        pairs = sc.parallelize(["aa", "b"]).keyBy(len).mapValues(str.upper)
        assert sorted(pairs.collect()) == [(1, "B"), (2, "AA")]

    def test_union(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_union_requires_same_context(self, sc):
        other = EVSparkContext()
        with pytest.raises(ValueError):
            sc.parallelize([1]).union(other.parallelize([2]))

    def test_narrow_chain_fuses_into_one_job(self, sc):
        rdd = (
            sc.parallelize(range(10))
            .map(lambda x: x + 1)
            .filter(lambda x: x > 3)
            .flatMap(lambda x: (x,))
        )
        jobs_before = len(sc.job_log)
        rdd.collect()
        assert len(sc.job_log) - jobs_before == 1, "narrow chain must fuse"


class TestWideOps:
    def test_groupByKey(self, sc):
        grouped = dict(
            sc.parallelize([(1, "a"), (2, "b"), (1, "c")]).groupByKey().collect()
        )
        assert sorted(grouped[1]) == ["a", "c"]
        assert grouped[2] == ["b"]

    def test_reduceByKey(self, sc):
        result = dict(
            sc.parallelize([(i % 3, i) for i in range(12)])
            .reduceByKey(lambda a, b: a + b)
            .collect()
        )
        assert result == {0: 0 + 3 + 6 + 9, 1: 1 + 4 + 7 + 10, 2: 2 + 5 + 8 + 11}

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([1, 1, 2, 3, 3, 3]).distinct().collect()) == [1, 2, 3]

    def test_join(self, sc):
        a = sc.parallelize([("x", 1), ("y", 2)])
        b = sc.parallelize([("x", 10), ("x", 20), ("z", 30)])
        joined = sorted(a.join(b).collect())
        assert joined == [("x", (1, 10)), ("x", (1, 20))]

    def test_sortBy(self, sc):
        data = [5, 3, 9, 1, 7, 2, 8]
        assert sc.parallelize(data, 3).sortBy(lambda x: x).collect() == sorted(data)

    def test_sortBy_descending_key(self, sc):
        data = [5, 3, 9, 1]
        out = sc.parallelize(data).sortBy(lambda x: -x).collect()
        assert out == sorted(data, reverse=True)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_sortBy_property(self, data):
        sc = EVSparkContext(default_partitions=3)
        if not data:
            assert sc.parallelize(data).sortBy(lambda x: x).collect() == []
        else:
            assert sc.parallelize(data).sortBy(lambda x: x).collect() == sorted(data)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)), max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_reduceByKey_matches_python(self, pairs):
        sc = EVSparkContext(default_partitions=3)
        if not pairs:
            return
        expected = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        result = dict(sc.parallelize(pairs).reduceByKey(lambda a, b: a + b).collect())
        assert result == expected


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(17)).count() == 17

    def test_take_and_first(self, sc):
        rdd = sc.parallelize(range(10), 1)
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.first() == 0
        with pytest.raises(ValueError):
            rdd.take(-1)

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([]).first()

    def test_reduce(self, sc):
        assert sc.parallelize([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10
        with pytest.raises(ValueError):
            sc.parallelize([]).reduce(lambda a, b: a + b)

    def test_countByKey(self, sc):
        counts = sc.parallelize([("a", 1), ("a", 2), ("b", 3)]).countByKey()
        assert counts == {"a": 2, "b": 1}


class TestCaching:
    def test_cache_avoids_recomputation(self, sc):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(5), 1).map(tracked).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first, "cached RDD must not recompute"

    def test_cached_prefix_shared_by_branches(self, sc):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        base = sc.parallelize(range(6), 2).map(tracked).cache()
        a = base.filter(lambda x: x % 2 == 0)
        b = base.filter(lambda x: x % 2 == 1)
        assert sorted(a.collect() + b.collect()) == list(range(6))
        assert len(calls) == 6, "shared prefix must run once"


class TestExtendedOps:
    def test_cogroup(self, sc):
        a = sc.parallelize([("x", 1), ("y", 2)])
        b = sc.parallelize([("x", 10), ("z", 30)])
        grouped = dict(a.cogroup(b).collect())
        assert grouped["x"] == ([1], [10])
        assert grouped["y"] == ([2], [])
        assert grouped["z"] == ([], [30])

    def test_left_outer_join(self, sc):
        a = sc.parallelize([("x", 1), ("y", 2)])
        b = sc.parallelize([("x", 10)])
        joined = sorted(a.leftOuterJoin(b).collect())
        assert joined == [("x", (1, 10)), ("y", (2, None))]

    def test_aggregate_by_key(self, sc):
        pairs = sc.parallelize([("a", 1), ("a", 2), ("b", 5)], 3)
        # (count, sum) aggregation
        result = dict(
            pairs.aggregateByKey(
                (0, 0),
                lambda acc, v: (acc[0] + 1, acc[1] + v),
                lambda x, y: (x[0] + y[0], x[1] + y[1]),
            ).collect()
        )
        assert result == {"a": (2, 3), "b": (1, 5)}

    def test_sample_deterministic_and_roughly_sized(self, sc):
        data = list(range(2000))
        a = sorted(sc.parallelize(data, 4).sample(0.25, seed=3).collect())
        b = sorted(sc.parallelize(data, 7).sample(0.25, seed=3).collect())
        assert a == b, "sample must not depend on partitioning"
        assert 380 < len(a) < 620

    def test_sample_bounds(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([1]).sample(1.5)
        assert sc.parallelize(range(10)).sample(0.0).collect() == []
        assert sorted(sc.parallelize(range(10)).sample(1.0).collect()) == list(range(10))

    def test_zip_with_index(self, sc):
        # Single partition: indices follow record order exactly.
        indexed = sc.parallelize(["a", "b", "c"], 1).zipWithIndex().collect()
        assert sorted(indexed, key=lambda kv: kv[1]) == [
            ("a", 0), ("b", 1), ("c", 2)
        ]
        # Multiple partitions: indices are unique and dense (order
        # follows partition order, as in Spark).
        indexed = sc.parallelize(range(10), 3).zipWithIndex().collect()
        assert sorted(i for _r, i in indexed) == list(range(10))
        assert sorted(r for r, _i in indexed) == list(range(10))

    def test_keys_values(self, sc):
        pairs = sc.parallelize([(1, "a"), (2, "b")])
        assert sorted(pairs.keys().collect()) == [1, 2]
        assert sorted(pairs.values().collect()) == ["a", "b"]

    def test_sum_min_max(self, sc):
        rdd = sc.parallelize([3, 1, 4, 1, 5])
        assert rdd.sum() == 14
        assert rdd.min() == 1
        assert rdd.max() == 5
        assert sc.parallelize([]).sum() == 0
        with pytest.raises(ValueError):
            sc.parallelize([]).min()
        with pytest.raises(ValueError):
            sc.parallelize([]).max()

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers(-20, 20)), max_size=40),
        st.lists(st.tuples(st.integers(0, 4), st.integers(-20, 20)), max_size=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_cogroup_covers_all_keys(self, left, right):
        sc = EVSparkContext(default_partitions=3)
        grouped = dict(
            sc.parallelize(left).cogroup(sc.parallelize(right)).collect()
        )
        assert set(grouped) == {k for k, _ in left} | {k for k, _ in right}
        for key, (lv, rv) in grouped.items():
            assert sorted(lv) == sorted(v for k, v in left if k == key)
            assert sorted(rv) == sorted(v for k, v in right if k == key)
