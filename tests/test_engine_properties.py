"""Property tests: the MapReduce engine against reference semantics.

For arbitrary generated inputs, a full engine run (any partitioning,
with or without combiner, with injected failures) must equal a plain
Python reference implementation of map -> group -> reduce.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.failures import FailurePolicy
from repro.mapreduce.job import MapReduceJob

records_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(-100, 100)),
    min_size=0,
    max_size=60,
)


def reference_sum_by_key(records):
    grouped = defaultdict(int)
    for key, value in records:
        grouped[key] += value
    return dict(grouped)


def run_engine(records, num_partitions, combiner=False, failure_rate=0.0, seed=0):
    engine = MapReduceEngine(
        cluster=SimulatedCluster(ClusterConfig(num_nodes=2, cores_per_node=2)),
        failure_policy=FailurePolicy(
            failure_rate=failure_rate, max_attempts=12, seed=seed
        ),
    )
    engine.dfs.write_records("in", records, num_partitions=num_partitions)
    job = MapReduceJob(
        name="sum",
        mapper=lambda kv: (kv,),
        reducer=lambda k, vs: ((k, sum(vs)),),
        combiner=(lambda k, vs: ((k, sum(vs)),)) if combiner else None,
        num_reducers=3,
    )
    engine.run(job, "in", "out")
    return dict(engine.dfs.read_all("out"))


class TestEngineSemantics:
    @given(records_strategy, st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, records, partitions):
        assert run_engine(records, partitions) == reference_sum_by_key(records)

    @given(records_strategy, st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_combiner_is_transparent(self, records, partitions):
        assert run_engine(records, partitions, combiner=True) == (
            reference_sum_by_key(records)
        )

    @given(
        records_strategy.filter(lambda r: len(r) > 0),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_failures_are_invisible_to_results(self, records, seed):
        quiet = run_engine(records, 4)
        flaky = run_engine(records, 4, failure_rate=0.3, seed=seed)
        assert quiet == flaky

    @given(records_strategy)
    @settings(max_examples=25, deadline=None)
    def test_partitioning_is_transparent(self, records):
        """Output must not depend on how the input was split."""
        results = {
            p: run_engine(records, p) for p in (1, 3, 6)
        }
        assert results[1] == results[3] == results[6]
