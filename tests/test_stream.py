"""Tests for ``repro.stream``: watermarks, queues, the windowed
assembler, checkpoint/restore, and the end-to-end pipeline guarantees
(batch equivalence, zero duplicate emission across a crash)."""

import json
import os

import numpy as np
import pytest

from repro.core.incremental import IncrementalMatcher
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.obs import EventLog, MetricsRegistry, set_event_log, set_registry
from repro.obs import events as ev
from repro.sensing.builder import CellSighting, VFrame
from repro.sensing.scenarios import Detection, ScenarioStore
from repro.service.server import MatchService, ServiceConfig
from repro.stream import (
    BoundedEventQueue,
    CheckpointMismatch,
    ReplayConfig,
    ServiceSink,
    StoreSink,
    StreamConfig,
    StreamPipeline,
    SyntheticLiveSource,
    TraceReplaySource,
    WatermarkTracker,
    WindowAssembler,
    diff_stores,
    load_checkpoint,
    restore_into,
    save_checkpoint,
    snapshot,
    stores_equivalent,
)
from repro.world.entities import EID, VID


@pytest.fixture(scope="module")
def small_world():
    """A tiny but non-degenerate world for replay tests."""
    return build_dataset(
        ExperimentConfig(
            num_people=30,
            cells_per_side=3,
            duration=120.0,
            sample_dt=10.0,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def windowed_world():
    """A practical-style world with multi-tick windows."""
    return build_dataset(
        ExperimentConfig(
            num_people=25,
            cells_per_side=3,
            duration=160.0,
            sample_dt=10.0,
            window_ticks=2,
            vague_width=20.0,
            seed=11,
        )
    )


# ---------------------------------------------------------------------------
# watermark
# ---------------------------------------------------------------------------
class TestWatermark:
    def test_no_events_no_watermark(self):
        tracker = WatermarkTracker()
        assert tracker.watermark is None
        assert not tracker.window_closable(0, window_ticks=1)

    def test_in_order_advance(self):
        tracker = WatermarkTracker(allowed_lateness=0)
        tracker.observe(0)
        assert not tracker.window_closable(0, window_ticks=1)
        tracker.observe(1)
        # First event of window 1 proves window 0 complete.
        assert tracker.window_closable(0, window_ticks=1)
        assert not tracker.window_closable(1, window_ticks=1)

    def test_lateness_delays_closing(self):
        tracker = WatermarkTracker(allowed_lateness=2)
        tracker.observe(0)
        tracker.observe(1)
        assert not tracker.window_closable(0, window_ticks=1)
        tracker.observe(3)
        assert tracker.window_closable(0, window_ticks=1)

    def test_restore(self):
        tracker = WatermarkTracker(allowed_lateness=1)
        tracker.restore(max_tick=9, events_seen=40)
        assert tracker.watermark == 8
        assert tracker.events_seen == 40


# ---------------------------------------------------------------------------
# queues
# ---------------------------------------------------------------------------
class TestBoundedQueue:
    def test_block_policy_is_lossless(self):
        queue = BoundedEventQueue(capacity=4, policy="block")
        for i in range(4):
            assert queue.put(i)
        assert queue.depth == 4
        assert queue.shed == 0

    def test_shed_policy_drops_newest(self):
        queue = BoundedEventQueue(capacity=2, policy="shed")
        assert queue.put("a")
        assert queue.put("b")
        assert not queue.put("c")
        assert queue.shed == 1
        assert queue.offered == 3
        assert queue.get() == "a"

    def test_sentinel_delivered_under_shed(self):
        queue = BoundedEventQueue(capacity=1, policy="shed")
        queue.put("a")
        queue.put_sentinel()
        assert queue.get() == "a"
        assert queue.get() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedEventQueue(capacity=0)
        with pytest.raises(ValueError, match="policy"):
            BoundedEventQueue(policy="reject")


# ---------------------------------------------------------------------------
# assembler
# ---------------------------------------------------------------------------
def _sighting(tick, cell, eid, vague=False):
    return CellSighting(tick=tick, cell_id=cell, eid=EID(eid), vague=vague)


class TestWindowAssembler:
    def test_window_closes_on_watermark_advance(self):
        assembler = WindowAssembler(window_ticks=1)
        closed, late = assembler.offer(_sighting(0, cell=0, eid=1))
        assert closed == [] and not late
        closed, late = assembler.offer(_sighting(1, cell=0, eid=1))
        assert len(closed) == 1 and not late
        (window,) = closed
        assert window.window == 0
        (scenario,) = window.scenarios
        assert scenario.key.cell_id == 0 and scenario.key.tick == 0
        assert scenario.e.inclusive == frozenset({EID(1)})

    def test_attribution_matches_batch_rule(self):
        # 1 of 2 ticks inside the window -> frac 0.5: vague band only.
        assembler = WindowAssembler(window_ticks=2)
        assembler.offer(_sighting(0, cell=0, eid=1))
        assembler.offer(_sighting(0, cell=0, eid=2))
        assembler.offer(_sighting(1, cell=0, eid=2))
        assembler.offer(VFrame(tick=1, cell_id=0, detections=()))
        (closed,) = assembler.flush()
        (scenario,) = closed.scenarios
        assert scenario.e.inclusive == frozenset({EID(2)})
        assert scenario.e.vague == frozenset({EID(1)})

    def test_late_event_dropped_and_counted(self):
        assembler = WindowAssembler(window_ticks=1)
        assembler.offer(_sighting(0, cell=0, eid=1))
        assembler.offer(_sighting(2, cell=0, eid=1))  # closes 0 and 1
        closed, late = assembler.offer(_sighting(0, cell=1, eid=2))
        assert late and closed == []
        assert assembler.late_dropped == 1

    def test_flush_closes_in_order(self):
        # Generous lateness keeps every window open until the flush.
        assembler = WindowAssembler(window_ticks=1, allowed_lateness=5)
        assembler.offer(_sighting(2, cell=0, eid=1))
        assembler.offer(_sighting(0, cell=1, eid=2))
        closed = assembler.flush()
        # Window 1 never saw an event, so it has nothing to close —
        # matching the batch builder, which emits no scenarios for an
        # unoccupied window either.
        assert [c.window for c in closed] == [0, 2]
        assert all(c.scenarios for c in closed)
        assert assembler.next_window == 3

    def test_peak_open_windows_tracked(self):
        assembler = WindowAssembler(window_ticks=1, allowed_lateness=3)
        for tick in range(4):
            assembler.offer(_sighting(tick, cell=0, eid=1))
        assert assembler.peak_open_windows == 4


# ---------------------------------------------------------------------------
# duplicate arrivals (satellite: pinned idempotence/raise semantics)
# ---------------------------------------------------------------------------
class TestDuplicateArrival:
    def test_store_add_raises_on_duplicate_key(self, small_world):
        store = ScenarioStore([])
        scenario = small_world.store.get(small_world.store.keys[0])
        store.add(scenario)
        with pytest.raises(ValueError, match="duplicate scenario key"):
            store.add(scenario)

    def test_incremental_matcher_ignores_duplicate_key(self, small_world):
        store = small_world.store
        matcher = IncrementalMatcher(store, small_world.eids)
        matcher.add_targets(list(small_world.eids[:5]))
        scenario = store.get(store.keys[0])
        first = matcher.observe(scenario)
        consumed = matcher.scenarios_consumed
        charged = matcher.clock.e_scenarios_examined
        evidence = {
            t: matcher.evidence_of(t)
            for t in small_world.eids[:5]
            if t in matcher.pending
        }
        again = matcher.observe(scenario)
        assert again == []
        assert first == first  # duplicate returns nothing new
        assert matcher.scenarios_consumed == consumed
        assert matcher.clock.e_scenarios_examined == charged
        assert matcher.duplicates_ignored == 1
        for target, trail in evidence.items():
            assert matcher.evidence_of(target) == trail

    def test_store_sink_suppresses_duplicates(self, small_world):
        store = ScenarioStore([])
        sink = StoreSink(store)
        scenarios = [small_world.store.get(k) for k in small_world.store.keys[:3]]
        applied, duplicates = sink.emit_window(scenarios)
        assert len(applied) == 3 and duplicates == 0
        applied, duplicates = sink.emit_window(scenarios)
        assert applied == [] and duplicates == 3
        assert len(store) == 3


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def _assembler_with_state(self):
        # Lateness 3 keeps both windows open through every offer below.
        assembler = WindowAssembler(window_ticks=2, allowed_lateness=3)
        assembler.offer(_sighting(0, cell=0, eid=1))
        assembler.offer(_sighting(1, cell=0, eid=1, vague=True))
        assembler.offer(
            VFrame(
                tick=1,
                cell_id=0,
                detections=(
                    Detection(
                        detection_id=9,
                        feature=np.array([0.25, -1.5, 3.0]),
                        true_vid=VID(4),
                    ),
                ),
            )
        )
        assembler.offer(_sighting(3, cell=1, eid=2))
        return assembler

    def test_roundtrip_preserves_state(self, tmp_path):
        assembler = self._assembler_with_state()
        config = {"window_ticks": 2, "allowed_lateness": 1}
        state = snapshot(
            assembler, events_processed=4, scenarios_emitted=0, config=config
        )
        path = str(tmp_path / "ck.json")
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)

        restored = WindowAssembler(window_ticks=2, allowed_lateness=3)
        restore_into(restored, loaded, config)
        assert restored.next_window == assembler.next_window
        assert restored.watermark.max_tick == assembler.watermark.max_tick
        assert restored.export_state() == assembler.export_state()

    def test_features_roundtrip_exactly(self, tmp_path):
        assembler = self._assembler_with_state()
        config = {"window_ticks": 2}
        path = str(tmp_path / "ck.json")
        save_checkpoint(
            path,
            snapshot(assembler, events_processed=4, scenarios_emitted=0, config=config),
        )
        loaded = load_checkpoint(path)
        (detection,) = loaded.open_windows[0].frames[0]
        np.testing.assert_array_equal(
            detection.feature, np.array([0.25, -1.5, 3.0])
        )

    def test_config_mismatch_refused(self, tmp_path):
        assembler = self._assembler_with_state()
        path = str(tmp_path / "ck.json")
        save_checkpoint(
            path,
            snapshot(
                assembler,
                events_processed=4,
                scenarios_emitted=0,
                config={"window_ticks": 2},
            ),
        )
        loaded = load_checkpoint(path)
        fresh = WindowAssembler(window_ticks=3)
        with pytest.raises(CheckpointMismatch, match="window_ticks"):
            restore_into(fresh, loaded, {"window_ticks": 3})

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointMismatch, match="version"):
            load_checkpoint(str(path))

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        assembler = self._assembler_with_state()
        path = str(tmp_path / "ck.json")
        save_checkpoint(
            path,
            snapshot(assembler, events_processed=1, scenarios_emitted=0, config={}),
        )
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


# ---------------------------------------------------------------------------
# pipeline: batch equivalence (the acceptance guarantee)
# ---------------------------------------------------------------------------
class TestBatchEquivalence:
    def test_in_order_replay_equals_batch_store(self, small_world):
        source = TraceReplaySource.from_dataset(small_world)
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(), synchronous=True
        )
        report = StreamPipeline(source, StoreSink(store), config).run()
        assert report.late_dropped == 0
        assert diff_stores(small_world.store, store) == []
        assert stores_equivalent(small_world.store, store)

    def test_in_order_replay_threaded(self, small_world):
        source = TraceReplaySource.from_dataset(small_world)
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(), queue_capacity=32
        )
        report = StreamPipeline(source, StoreSink(store), config).run()
        assert report.shed == 0
        assert stores_equivalent(small_world.store, store)

    def test_jittered_replay_within_lateness_equals_batch(self, small_world):
        source = TraceReplaySource.from_dataset(
            small_world, ReplayConfig(jitter_ticks=3, seed=5)
        )
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(),
            synchronous=True,
            allowed_lateness=3,
        )
        report = StreamPipeline(source, StoreSink(store), config).run()
        assert report.late_dropped == 0
        assert stores_equivalent(small_world.store, store)

    def test_multi_tick_windows_equal_batch(self, windowed_world):
        source = TraceReplaySource.from_dataset(
            windowed_world, ReplayConfig(jitter_ticks=2, seed=1)
        )
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            windowed_world.config.builder_config(),
            synchronous=True,
            allowed_lateness=2,
        )
        StreamPipeline(source, StoreSink(store), config).run()
        assert diff_stores(windowed_world.store, store) == []

    def test_insufficient_lateness_drops_late_events(self, small_world):
        source = TraceReplaySource.from_dataset(
            small_world, ReplayConfig(jitter_ticks=4, seed=2)
        )
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(),
            synchronous=True,
            allowed_lateness=0,
        )
        report = StreamPipeline(source, StoreSink(store), config).run()
        assert report.late_dropped > 0


# ---------------------------------------------------------------------------
# pipeline: checkpoint/restore, zero duplicate emission
# ---------------------------------------------------------------------------
class TestKillRestore:
    def test_kill_and_restore_completes_without_duplicates(
        self, small_world, tmp_path
    ):
        checkpoint = str(tmp_path / "stream.ck.json")
        builder_config = small_world.config.builder_config()
        log = EventLog(capacity=100_000)
        previous = set_event_log(log)
        try:
            store = ScenarioStore([])
            killed = StreamPipeline(
                TraceReplaySource.from_dataset(small_world),
                StoreSink(store),
                StreamConfig.from_builder(
                    builder_config,
                    synchronous=True,
                    checkpoint_path=checkpoint,
                    checkpoint_every_windows=3,
                    max_events=240,
                ),
            ).run()
            assert killed.killed and killed.checkpoints_saved > 0
            assert os.path.exists(checkpoint)

            resumed = StreamPipeline(
                TraceReplaySource.from_dataset(small_world),
                StoreSink(store),
                StreamConfig.from_builder(
                    builder_config,
                    synchronous=True,
                    checkpoint_path=checkpoint,
                ),
            ).run()
        finally:
            set_event_log(previous)

        assert resumed.restored
        assert not resumed.killed
        assert stores_equivalent(small_world.store, store)
        assert (
            killed.events_applied + resumed.events_applied
            >= resumed.events_processed_total
        )
        # The flight recorder proves zero duplicate emissions: exactly
        # one emitted event per scenario across both attempts.
        emitted = [
            (event["fields"]["cell"], event["fields"]["window"])
            for event in log.events(ev.STREAM_SCENARIO_EMITTED)
        ]
        assert len(emitted) == len(set(emitted))
        assert len(emitted) == len(small_world.store)
        restores = log.events(ev.STREAM_CHECKPOINT_RESTORED)
        assert len(restores) == 1
        assert (
            restores[0]["fields"]["events_processed"]
            <= killed.events_processed_total
        )

    def test_kill_between_checkpoints_suppresses_reemission(
        self, small_world, tmp_path
    ):
        """Windows closed after the last checkpoint re-assemble on
        restore and must be swallowed by the idempotent sink."""
        checkpoint = str(tmp_path / "stream.ck.json")
        builder_config = small_world.config.builder_config()
        store = ScenarioStore([])
        killed = StreamPipeline(
            TraceReplaySource.from_dataset(small_world),
            StoreSink(store),
            StreamConfig.from_builder(
                builder_config,
                synchronous=True,
                checkpoint_path=checkpoint,
                checkpoint_every_windows=5,  # sparse: kill after a close
                max_events=300,
            ),
        ).run()
        assert killed.killed
        resumed = StreamPipeline(
            TraceReplaySource.from_dataset(small_world),
            StoreSink(store),
            StreamConfig.from_builder(
                builder_config, synchronous=True, checkpoint_path=checkpoint
            ),
        ).run()
        assert stores_equivalent(small_world.store, store)
        # Windows closed after the last checkpoint were re-assembled on
        # restore and suppressed by the sink, not double-added
        # (store.add would have raised otherwise).
        assert resumed.duplicates_suppressed > 0
        assert (
            resumed.scenarios_emitted_total + resumed.duplicates_suppressed
            == len(small_world.store)
        )

    def test_restore_refuses_changed_semantics(self, small_world, tmp_path):
        checkpoint = str(tmp_path / "stream.ck.json")
        builder_config = small_world.config.builder_config()
        StreamPipeline(
            TraceReplaySource.from_dataset(small_world),
            StoreSink(ScenarioStore([])),
            StreamConfig.from_builder(
                builder_config,
                synchronous=True,
                checkpoint_path=checkpoint,
                max_events=200,
            ),
        ).run()
        mismatched = StreamPipeline(
            TraceReplaySource.from_dataset(small_world),
            StoreSink(ScenarioStore([])),
            StreamConfig.from_builder(
                builder_config,
                synchronous=True,
                checkpoint_path=checkpoint,
                allowed_lateness=7,  # different semantics
            ),
        )
        with pytest.raises(CheckpointMismatch, match="allowed_lateness"):
            mismatched.run()

    def test_checkpoint_requires_lossless_policy(self):
        with pytest.raises(ValueError, match="block"):
            StreamConfig(checkpoint_path="x.json", overflow="shed")


# ---------------------------------------------------------------------------
# pipeline: sinks, sources, metrics
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_service_sink_feeds_live_service(self, small_world):
        store = ScenarioStore([])
        service = MatchService(
            store,
            grid=small_world.grid,
            universe=small_world.eids,
            config=ServiceConfig(workers=1, num_shards=2),
        )
        sink = ServiceSink(service)
        config = StreamConfig.from_builder(
            small_world.config.builder_config(), synchronous=True
        )
        report = StreamPipeline(
            TraceReplaySource.from_dataset(small_world), sink, config
        ).run()
        assert len(service.store) == len(small_world.store)
        assert report.scenarios_applied == len(small_world.store)
        assert stores_equivalent(small_world.store, service.store)
        # Feeding the same stream again is fully suppressed.
        again = StreamPipeline(
            TraceReplaySource.from_dataset(small_world), sink, config
        ).run()
        assert again.scenarios_applied == 0
        assert again.duplicates_suppressed == len(small_world.store)

    def test_store_sink_drives_watchlist(self, small_world):
        store = ScenarioStore([])
        watch = IncrementalMatcher(store, small_world.eids)
        watch.add_targets(list(small_world.eids[:8]))
        config = StreamConfig.from_builder(
            small_world.config.builder_config(), synchronous=True
        )
        StreamPipeline(
            TraceReplaySource.from_dataset(small_world),
            StoreSink(store, watch=watch),
            config,
        ).run()
        assert watch.scenarios_consumed == len(small_world.store)

    def test_synthetic_live_source_is_deterministic(self):
        config = ExperimentConfig(
            num_people=15, cells_per_side=3, duration=100.0, seed=3
        )
        runs = []
        for _ in range(2):
            store = ScenarioStore([])
            StreamPipeline(
                SyntheticLiveSource(config, max_windows=5),
                StoreSink(store),
                StreamConfig.from_builder(
                    config.builder_config(), synchronous=True
                ),
            ).run()
            runs.append(store)
        assert stores_equivalent(runs[0], runs[1])
        assert {k.tick for k in runs[0].keys} == {0, 1, 2, 3, 4}

    def test_shed_policy_conserves_events(self, small_world):
        source = TraceReplaySource.from_dataset(small_world)
        total = sum(1 for _ in source.events())
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(),
            queue_capacity=4,
            overflow="shed",
        )
        report = StreamPipeline(
            TraceReplaySource.from_dataset(small_world), StoreSink(store), config
        ).run()
        assert report.events_applied + report.shed == total

    def test_metrics_recorded(self, small_world):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            store = ScenarioStore([])
            config = StreamConfig.from_builder(
                small_world.config.builder_config(), synchronous=True
            )
            StreamPipeline(
                TraceReplaySource.from_dataset(small_world),
                StoreSink(store),
                config,
            ).run()
        finally:
            set_registry(previous)
        events_total = registry.counter("ev_stream_events_total")
        assert events_total.total() > 0
        assert registry.counter(
            "ev_stream_scenarios_emitted_total"
        ).total() == len(small_world.store)
        assert registry.counter("ev_stream_windows_closed_total").total() > 0

    def test_report_render_mentions_key_figures(self, small_world):
        store = ScenarioStore([])
        config = StreamConfig.from_builder(
            small_world.config.builder_config(), synchronous=True
        )
        report = StreamPipeline(
            TraceReplaySource.from_dataset(small_world), StoreSink(store), config
        ).run()
        text = report.render()
        assert "events applied" in text
        assert "duplicates suppressed" in text
        assert str(report.windows_closed) in text

    def test_replay_requires_traces(self, small_world):
        stripped = type(small_world)(
            config=small_world.config,
            population=small_world.population,
            grid=small_world.grid,
            traces=None,
            store=small_world.store,
        )
        with pytest.raises(ValueError, match="no traces"):
            TraceReplaySource.from_dataset(stripped)

    def test_replay_config_validation(self):
        with pytest.raises(ValueError, match="speedup"):
            ReplayConfig(speedup=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            ReplayConfig(jitter_ticks=-2)
