"""Smoke tests for the benchmark harness (experiment functions + rendering).

The experiments run at the ``smoke`` scale here; the full sweeps live in
``benchmarks/`` where pytest-benchmark times them.
"""

import pytest

from repro.bench import experiments, render_rows
from repro.bench import datasets as ds_mod


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    ds_mod.dataset.cache_clear()
    yield
    ds_mod.dataset.cache_clear()


class TestScaleKnob:
    def test_scale_values(self, monkeypatch):
        assert ds_mod.scale() == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert ds_mod.scale() == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.raises(ValueError):
            ds_mod.scale()

    def test_axes_shrink_in_smoke(self):
        assert len(ds_mod.matched_eids_axis()) == 2
        assert len(ds_mod.table_axis()) == 1

    def test_default_config_smoke_is_small(self):
        config = ds_mod.default_config()
        assert config.num_people <= 300

    def test_dataset_cached(self):
        config = ds_mod.default_config()
        assert ds_mod.dataset(config) is ds_mod.dataset(config)


class TestExperimentFunctions:
    def test_fig5(self):
        columns, rows = experiments.fig5_scenarios_vs_eids()
        assert rows and set(columns) <= set(rows[0].keys()) | set(columns)
        for row in rows:
            assert row["ss_selected"] > 0

    def test_fig7(self):
        _columns, rows = experiments.fig7_scenarios_per_eid()
        for row in rows:
            assert row["ss_per_eid"] > 0
            assert row["edp_per_eid"] > 0

    def test_table1(self):
        _columns, rows = experiments.table1_accuracy_vs_eids()
        for row in rows:
            assert 0 <= row["ss_acc_pct"] <= 100
            assert 0 <= row["edp_acc_pct"] <= 100

    def test_fig8_time_structure(self):
        _columns, rows = experiments.fig8_time_vs_eids()
        for row in rows:
            assert row["ss_total_s"] == pytest.approx(
                row["ss_e_s"] + row["ss_v_s"], abs=0.2
            )


class TestRendering:
    def test_render_rows(self):
        text = render_rows(
            "Demo", ("a", "b"), [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        )
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        assert "2.50" in text and "-" in lines[-1]

    def test_render_empty(self):
        assert "(no rows)" in render_rows("Empty", ("a",), [])
