"""Tests for exclusion-based VID filtering (matched-VID reuse)."""

import numpy as np
import pytest

from repro.core.matcher import EVMatcher, MatcherConfig
from repro.core.refining import RefiningConfig
from repro.core.vid_filtering import FilterConfig, VIDFilter
from repro.sensing.scenarios import (
    Detection,
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID, VID


def store_from_features(cells):
    """cells: list of [(vid_index, feature_vector), ...] per scenario."""
    scenarios = []
    det_id = 0
    for i, dets in enumerate(cells):
        key = ScenarioKey(cell_id=i, tick=i)
        detections = []
        eids = set()
        for vid_index, feature in dets:
            detections.append(
                Detection(
                    detection_id=det_id,
                    feature=np.asarray(feature, dtype=float),
                    true_vid=VID(vid_index),
                )
            )
            eids.add(EID(vid_index))
            det_id += 1
        scenarios.append(
            EVScenario(
                e=EScenario(key=key, inclusive=frozenset(eids)),
                v=VScenario(key=key, detections=tuple(detections)),
            )
        )
    return ScenarioStore(scenarios)


def unit(*values):
    v = np.array(values, dtype=float)
    return v / np.linalg.norm(v)


class TestExclusionMechanics:
    def test_paper_example_two_eids(self):
        """The paper's Sec. IV-A example: EID1 is alone in scenario B,
        EID1 and EID2 share scenario A.  EID2's identity in A is
        ambiguous from similarities alone (both candidates look alike);
        ruling out the VID already matched to EID1 resolves it."""
        # Both people co-occur in every scenario of EID 2's list, so
        # their probability products tie and the per-scenario argmax
        # falls back to detection order — which picks person 1, wrongly,
        # unless person 1's matched appearance is ruled out.
        f1 = unit(1, 0, 0)
        f2 = unit(0, 1, 0)
        store = store_from_features(
            [
                [(1, f1), (2, f2)],  # scenario A: both present
                [(1, f1)],           # scenario B: only person 1
                [(1, f1), (2, f2)],  # scenario C: both again
            ]
        )
        keys = list(store.keys)
        vid_filter = VIDFilter(store, FilterConfig(exclusion_threshold=0.9))
        evidence = {
            EID(1): [keys[0], keys[1]],
            EID(2): [keys[0], keys[2]],
        }
        results = vid_filter.match(evidence, use_exclusion=True)
        # EID 1 (shorter list? both len 2; tie broken by EID order) is
        # matched first and claims its appearance; EID 2's choices must
        # then avoid person 1's detections.
        chosen_vids_2 = {d.true_vid for d in results[EID(2)].chosen}
        assert VID(2) in chosen_vids_2
        assert VID(1) not in chosen_vids_2

    def test_exclusion_never_empties_a_scenario(self):
        """If every candidate in a scenario looks claimed, suppression
        is skipped rather than choosing from nothing."""
        f = unit(1, 0)
        store = store_from_features([[(1, f)], [(1, f)]])
        keys = list(store.keys)
        vid_filter = VIDFilter(store, FilterConfig(exclusion_threshold=0.5))
        results = vid_filter.match(
            {EID(1): [keys[0]], EID(2): [keys[1]]}, use_exclusion=True
        )
        # EID 2's only candidate is person 1 (already claimed) — the
        # filter still returns a choice instead of crashing.
        assert len(results[EID(2)].chosen) == 1

    def test_shaky_matches_claim_nothing(self):
        """A low-agreement match must not claim an appearance."""
        store = store_from_features(
            [
                [(1, unit(1, 0, 0))],
                [(1, unit(0, 1, 0))],  # wildly inconsistent appearance
            ]
        )
        keys = list(store.keys)
        vid_filter = VIDFilter(store, FilterConfig(min_agreement=0.9))
        result = vid_filter.match_one(EID(1), keys)
        assert vid_filter._claim_centroid(result) is None

    def test_without_exclusion_order_is_irrelevant(self):
        f1, f2 = unit(1, 0), unit(0, 1)
        store = store_from_features([[(1, f1), (2, f2)], [(1, f1), (2, f2)]])
        keys = list(store.keys)
        vid_filter = VIDFilter(store)
        a = vid_filter.match({EID(1): keys, EID(2): keys})
        b = vid_filter.match({EID(2): keys, EID(1): keys})
        for eid in (EID(1), EID(2)):
            assert [d.detection_id for d in a[eid].chosen] == [
                d.detection_id for d in b[eid].chosen
            ]


class TestMatcherIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="exclusion"):
            MatcherConfig(
                use_exclusion=True, refining=RefiningConfig(max_rounds=2)
            )
        with pytest.raises(ValueError):
            FilterConfig(exclusion_threshold=1.0)

    def test_universal_with_exclusion_not_worse(self, ideal_dataset):
        plain = EVMatcher(ideal_dataset.store).match_universal()
        excl = EVMatcher(
            ideal_dataset.store, MatcherConfig(use_exclusion=True)
        ).match_universal()
        assert (
            excl.score(ideal_dataset.truth).accuracy
            >= plain.score(ideal_dataset.truth).accuracy - 0.02
        )
