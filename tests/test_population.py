"""Tests for the population generator and its ground-truth lookups."""

import pytest

from repro.world.entities import EID, VID
from repro.world.population import Population, PopulationConfig


class TestPopulationConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            PopulationConfig(num_people=0)
        with pytest.raises(ValueError):
            PopulationConfig(device_carry_rate=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(device_carry_rate=-0.1)


class TestPopulation:
    def test_everyone_has_vid(self):
        pop = Population(PopulationConfig(num_people=50))
        assert len(pop.vids) == 50

    def test_full_carry_rate_gives_everyone_an_eid(self):
        pop = Population(PopulationConfig(num_people=50, device_carry_rate=1.0))
        assert len(pop.eids) == 50
        assert all(p.has_device for p in pop.people)

    def test_partial_carry_rate(self):
        pop = Population(
            PopulationConfig(num_people=400, device_carry_rate=0.5, seed=1)
        )
        carried = len(pop.eids)
        # Binomial(400, 0.5): far from both extremes with overwhelming odds.
        assert 140 < carried < 260

    def test_zero_carry_rate(self):
        pop = Population(PopulationConfig(num_people=10, device_carry_rate=0.0))
        assert len(pop.eids) == 0

    def test_ground_truth_roundtrip(self):
        pop = Population(PopulationConfig(num_people=20))
        for person in pop.people:
            assert pop.person_of_vid(person.vid) is person
            if person.eid is not None:
                assert pop.person_of_eid(person.eid) is person
                assert pop.true_vid_of(person.eid) == person.vid

    def test_true_match_map_covers_device_carriers(self):
        pop = Population(
            PopulationConfig(num_people=100, device_carry_rate=0.7, seed=2)
        )
        truth = pop.true_match_map()
        assert set(truth.keys()) == set(pop.eids)
        for eid, vid in truth.items():
            assert pop.person_of_eid(eid).vid == vid

    def test_unknown_lookups_raise(self):
        pop = Population(PopulationConfig(num_people=5))
        with pytest.raises(KeyError):
            pop.person_of_eid(EID(99))
        with pytest.raises(KeyError):
            pop.person_of_vid(VID(99))
        with pytest.raises(KeyError):
            pop.person(99)

    def test_deterministic_by_seed(self):
        a = Population(PopulationConfig(num_people=50, device_carry_rate=0.5, seed=3))
        b = Population(PopulationConfig(num_people=50, device_carry_rate=0.5, seed=3))
        assert [p.has_device for p in a.people] == [p.has_device for p in b.people]

    def test_eids_sorted(self):
        pop = Population(PopulationConfig(num_people=30))
        assert list(pop.eids) == sorted(pop.eids)


class TestMultiDevice:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PopulationConfig(multi_device_rate=1.5)

    def test_extra_eids_created(self):
        pop = Population(
            PopulationConfig(num_people=200, multi_device_rate=0.5, seed=4)
        )
        multi = [p for p in pop.people if p.extra_eids]
        assert 60 < len(multi) < 140
        # Extra EID indices sit above the population range, no clashes.
        extra_indices = [e.index for p in multi for e in p.extra_eids]
        assert all(i >= 200 for i in extra_indices)
        assert len(extra_indices) == len(set(extra_indices))

    def test_all_devices_resolve_to_owner(self):
        pop = Population(
            PopulationConfig(num_people=50, multi_device_rate=0.4, seed=5)
        )
        for person in pop.people:
            for eid in person.all_eids:
                assert pop.person_of_eid(eid) is person
                assert pop.true_vid_of(eid) == person.vid

    def test_truth_map_covers_every_device(self):
        pop = Population(
            PopulationConfig(num_people=50, multi_device_rate=0.4, seed=6)
        )
        truth = pop.true_match_map()
        assert set(truth) == set(pop.eids)

    def test_zero_rate_means_no_extras(self):
        pop = Population(PopulationConfig(num_people=30, multi_device_rate=0.0))
        assert all(not p.extra_eids for p in pop.people)
