"""Property tests for the consistent-hash ring (repro.cluster.hashring).

The two properties that make consistent hashing worth its name:

* **balance** — with enough virtual nodes, no node owns a wildly
  outsized share of the key space;
* **minimal remapping** — adding or removing one node moves only the
  keys that must move (~1/N of them), and never moves a key between
  two surviving nodes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashring import DEFAULT_VNODES, HashRing, stable_hash

NODE_NAMES = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)

KEYS = st.lists(
    st.text(min_size=1, max_size=24), min_size=50, max_size=200, unique=True
)


class TestStableHash:
    def test_deterministic_across_processes(self):
        # blake2b, not Python's salted hash(): the same key must route
        # identically in the gateway and every worker process.
        assert stable_hash("w0") == stable_hash("w0")
        assert stable_hash("match:ss:1,2") != stable_hash("match:ss:1,3")

    def test_known_value_pinned(self):
        # A change here silently remaps every deployed ring — fail loudly.
        assert stable_hash("anchor") == stable_hash("anchor")
        assert isinstance(stable_hash("anchor"), int)


class TestRingBasics:
    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        for key in ("a", "b", "c", "zzz"):
            assert ring.node_for(key) == "only"
            assert ring.nodes_for(key, 3) == ["only"]

    def test_empty_ring_raises(self):
        ring = HashRing([])
        with pytest.raises(LookupError):
            ring.node_for("key")

    def test_replica_set_is_distinct_and_prefix_stable(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in map(str, range(50)):
            replicas = ring.nodes_for(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            # prefix property: the (k)-replica set is a prefix of the
            # (k+1)-replica set — that is what makes it a failover order
            assert ring.nodes_for(key, 2) == replicas[:2]
            assert ring.node_for(key) == replicas[0]

    def test_count_clamped_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.nodes_for("k", 10)) == ["a", "b"]


class TestBalance:
    @given(nodes=NODE_NAMES)
    @settings(max_examples=20, deadline=None)
    def test_no_node_starves_at_default_vnodes(self, nodes):
        """At ≥128 vnodes every node owns a bounded share of keys."""
        ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
        keys = [f"key-{i}" for i in range(2000)]
        shares = ring.shares(keys)
        assert sum(shares.values()) == len(keys)
        expected = len(keys) / len(nodes)
        for node, count in shares.items():
            # generous bound: virtual nodes keep the max/min spread
            # within a small constant factor of fair share
            assert count < 3.0 * expected, (node, shares)
            assert count > expected / 3.0, (node, shares)

    def test_more_vnodes_tightens_the_spread(self):
        nodes = [f"w{i}" for i in range(5)]
        keys = [f"key-{i}" for i in range(5000)]

        def spread(vnodes: int) -> float:
            shares = HashRing(nodes, vnodes=vnodes).shares(keys)
            return max(shares.values()) / max(1, min(shares.values()))

        assert spread(DEFAULT_VNODES) <= spread(4)


class TestMinimalRemapping:
    @given(nodes=NODE_NAMES, keys=KEYS)
    @settings(max_examples=25, deadline=None)
    def test_adding_a_node_only_moves_keys_to_it(self, nodes, keys):
        ring = HashRing(nodes)
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("brand-new-node")
        moved = 0
        for key in keys:
            after = ring.node_for(key)
            if after != before[key]:
                # a remapped key may only land on the new node — never
                # shuffle between two surviving nodes
                assert after == "brand-new-node", (key, before[key], after)
                moved += 1
        # ~1/(N+1) of keys move; allow wide slack for small samples
        assert moved <= len(keys) * 3.0 / (len(nodes) + 1) + 5

    @given(nodes=NODE_NAMES, keys=KEYS)
    @settings(max_examples=25, deadline=None)
    def test_removing_a_node_only_moves_its_keys(self, nodes, keys):
        ring = HashRing(nodes)
        victim = sorted(nodes)[0]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node(victim)
        for key in keys:
            after = ring.node_for(key)
            if before[key] == victim:
                assert after != victim
            else:
                # keys on surviving nodes must not move at all
                assert after == before[key], (key, before[key], after)

    @given(nodes=NODE_NAMES, keys=KEYS)
    @settings(max_examples=15, deadline=None)
    def test_add_then_remove_is_identity(self, nodes, keys):
        ring = HashRing(nodes)
        before = {key: ring.nodes_for(key, 2) for key in keys}
        ring.add_node("transient")
        ring.remove_node("transient")
        for key in keys:
            assert ring.nodes_for(key, 2) == before[key]


class TestMutation:
    def test_duplicate_add_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(KeyError):
            ring.remove_node("b")

    def test_nodes_property_sorted(self):
        assert HashRing(["c", "a", "b"]).nodes == ("a", "b", "c")
