"""Tests for the simulated cluster's list scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster, TaskStats


class TestClusterConfig:
    def test_paper_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 14
        assert config.cores_per_node == 4
        assert config.total_slots == 56

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"cores_per_node": 0},
            {"task_overhead": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestSchedule:
    def cluster(self, nodes=2, cores=2, overhead=0.0):
        return SimulatedCluster(
            ClusterConfig(num_nodes=nodes, cores_per_node=cores, task_overhead=overhead)
        )

    def test_empty_stage(self):
        stats = self.cluster().schedule([])
        assert stats.num_tasks == 0
        assert stats.makespan == 0.0
        assert stats.slot_utilization == 1.0

    def test_single_task(self):
        stats = self.cluster().schedule([5.0])
        assert stats.makespan == pytest.approx(5.0)
        assert stats.serial_cost == pytest.approx(5.0)

    def test_perfectly_parallel(self):
        stats = self.cluster(nodes=2, cores=2).schedule([1.0] * 4)
        assert stats.makespan == pytest.approx(1.0)
        assert stats.slot_utilization == pytest.approx(1.0)

    def test_two_waves(self):
        stats = self.cluster(nodes=2, cores=2).schedule([1.0] * 8)
        assert stats.makespan == pytest.approx(2.0)

    def test_straggler_dominates(self):
        stats = self.cluster(nodes=2, cores=2).schedule([10.0, 0.1, 0.1, 0.1])
        assert stats.makespan == pytest.approx(10.0)
        assert stats.slot_utilization < 0.5

    def test_overhead_charged_per_task(self):
        stats = self.cluster(nodes=1, cores=1, overhead=0.5).schedule([1.0, 1.0])
        assert stats.makespan == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            self.cluster().schedule([1.0, -2.0])

    def test_speedup(self):
        cluster = self.cluster(nodes=2, cores=2)
        assert cluster.speedup([1.0] * 4) == pytest.approx(4.0)
        assert cluster.speedup([]) == pytest.approx(4.0)

    def test_per_slot_busy_sums_to_serial(self):
        cluster = self.cluster(nodes=2, cores=2)
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        stats = cluster.schedule(costs)
        assert sum(stats.per_slot_busy) == pytest.approx(stats.serial_cost)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, costs):
        """List scheduling invariants: makespan is at least both the
        critical task and the perfectly-balanced load, and at most the
        serial cost; utilization is in (0, 1]."""
        cluster = self.cluster(nodes=2, cores=3)
        stats = cluster.schedule(costs)
        slots = 6
        lower = max(max(costs), sum(costs) / slots)
        assert stats.makespan >= lower - 1e-9
        assert stats.makespan <= sum(costs) + 1e-9
        if stats.makespan > 0:
            assert 0.0 < stats.slot_utilization <= 1.0 + 1e-9
