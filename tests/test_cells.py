"""Tests for the grid and hex cell decompositions and vague zones."""

import pytest
from hypothesis import given, strategies as st

from repro.world.cells import Cell, CellGrid, HexCellGrid, ZoneKind
from repro.world.geometry import BoundingBox, Point

REGION = BoundingBox.square(1000.0)

in_region = st.builds(
    Point,
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)


class TestCellGrid:
    def test_cell_count(self):
        assert CellGrid(REGION, 5).num_cells == 25
        assert len(CellGrid(REGION, 3)) == 9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CellGrid(REGION, 0)
        with pytest.raises(ValueError):
            CellGrid(REGION, 5, vague_width=-1.0)
        with pytest.raises(ValueError, match="inclusive zone"):
            CellGrid(REGION, 5, vague_width=100.0)  # 200 m cells

    def test_locate_centers(self):
        grid = CellGrid(REGION, 5)
        for cell in grid:
            assert grid.locate(cell.center) is cell

    def test_locate_clamps_outside_points(self):
        grid = CellGrid(REGION, 4)
        assert grid.locate(Point(-50, -50)).cell_id == grid.locate(Point(0, 0)).cell_id
        far = grid.locate(Point(2000, 2000))
        assert far.cell_id == grid.num_cells - 1

    def test_cell_lookup_by_id(self):
        grid = CellGrid(REGION, 3)
        assert grid.cell(4).cell_id == 4
        with pytest.raises(KeyError):
            grid.cell(9)

    def test_classify_ideal_always_inclusive(self):
        grid = CellGrid(REGION, 5)
        cell, zone = grid.classify(Point(500, 500))
        assert zone is ZoneKind.INCLUSIVE
        assert cell.bounds.contains(Point(500, 500))

    def test_classify_vague_near_border(self):
        grid = CellGrid(REGION, 5, vague_width=20.0)  # cells 200 m
        # 5 m from a cell border -> vague
        _cell, zone = grid.classify(Point(205.0, 100.0))
        assert zone is ZoneKind.VAGUE
        # deep inside -> inclusive
        _cell, zone = grid.classify(Point(100.0, 100.0))
        assert zone is ZoneKind.INCLUSIVE

    def test_classify_relative_to_other_cell_exclusive(self):
        grid = CellGrid(REGION, 5, vague_width=20.0)
        other = grid.cell(0)
        _cell, zone = grid.classify(Point(900, 900), cell=other)
        assert zone is ZoneKind.EXCLUSIVE

    def test_neighbors_interior(self):
        grid = CellGrid(REGION, 5)
        center = grid.locate(Point(500, 500))
        assert len(list(grid.neighbors(center))) == 8

    def test_neighbors_corner(self):
        grid = CellGrid(REGION, 5)
        corner = grid.locate(Point(1, 1))
        assert len(list(grid.neighbors(corner))) == 3

    def test_cells_cover_region_disjointly(self):
        grid = CellGrid(REGION, 4)
        total_area = sum(c.bounds.area for c in grid)
        assert total_area == pytest.approx(REGION.area)

    @given(in_region)
    def test_locate_contains_point(self, point):
        grid = CellGrid(REGION, 5)
        cell = grid.locate(point)
        assert cell.bounds.contains(point)

    @given(in_region)
    def test_classify_matches_locate(self, point):
        grid = CellGrid(REGION, 5, vague_width=15.0)
        cell, zone = grid.classify(point)
        assert cell is grid.locate(point)
        assert zone in (ZoneKind.INCLUSIVE, ZoneKind.VAGUE)

    @given(in_region)
    def test_vague_iff_near_border(self, point):
        width = 25.0
        grid = CellGrid(REGION, 5, vague_width=width)
        cell, zone = grid.classify(point)
        near_border = cell.bounds.distance_to_border(point) < width
        assert (zone is ZoneKind.VAGUE) == near_border


class TestHexCellGrid:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HexCellGrid(REGION, 0.0)
        with pytest.raises(ValueError):
            HexCellGrid(REGION, 100.0, vague_width=-1.0)
        with pytest.raises(ValueError, match="inclusive zone"):
            HexCellGrid(REGION, 100.0, vague_width=90.0)

    def test_locate_centers(self):
        grid = HexCellGrid(REGION, 120.0)
        for cell in grid.cells[:20]:
            assert grid.locate(cell.center) is cell

    def test_cover_includes_whole_region(self):
        grid = HexCellGrid(REGION, 150.0)
        for point in (Point(0, 0), Point(999, 999), Point(500, 0), Point(0, 500)):
            cell = grid.locate(point)
            # the located hex center is within one circumradius of the point
            assert cell.center.distance_to(point) <= 150.0 + 1e-6

    def test_classify_center_inclusive(self):
        grid = HexCellGrid(REGION, 120.0, vague_width=20.0)
        cell = grid.locate(Point(500, 500))
        got, zone = grid.classify(cell.center)
        assert got is cell
        assert zone is ZoneKind.INCLUSIVE

    def test_classify_exclusive_for_far_cell(self):
        grid = HexCellGrid(REGION, 120.0, vague_width=20.0)
        far = grid.locate(Point(900, 900))
        _got, zone = grid.classify(Point(100, 100), cell=far)
        assert zone is ZoneKind.EXCLUSIVE

    def test_neighbors_are_adjacent(self):
        grid = HexCellGrid(REGION, 120.0)
        cell = grid.locate(Point(500, 500))
        neighbors = list(grid.neighbors(cell))
        assert 1 <= len(neighbors) <= 6
        for n in neighbors:
            # center spacing of adjacent pointy-top hexes is sqrt(3)*R
            assert n.center.distance_to(cell.center) == pytest.approx(
                120.0 * 3**0.5, rel=1e-6
            )

    @given(in_region)
    def test_locate_is_nearest_center(self, point):
        grid = HexCellGrid(REGION, 140.0)
        located = grid.locate(point)
        best = min(grid.cells, key=lambda c: c.center.distance_to(point))
        assert located.center.distance_to(point) == pytest.approx(
            best.center.distance_to(point), abs=1e-6
        )

    @given(in_region)
    def test_vague_band_width(self, point):
        width = 25.0
        grid = HexCellGrid(REGION, 140.0, vague_width=width)
        cell = grid.locate(point)
        _got, zone = grid.classify(point, cell=cell)
        border = grid._distance_to_hex_border(point, cell.center)
        if border < 0:
            assert zone is ZoneKind.EXCLUSIVE
        elif border < width:
            assert zone is ZoneKind.VAGUE
        else:
            assert zone is ZoneKind.INCLUSIVE
