"""Tests for the scenario builder: windowing, attribution, consistency."""

import numpy as np
import pytest

from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.trace import generate_traces
from repro.sensing.builder import ScenarioBuilder, ScenarioBuilderConfig
from repro.sensing.e_sensing import ESensingConfig, ESensingModel
from repro.sensing.v_sensing import VSensingConfig, VSensingModel
from repro.world.cells import CellGrid
from repro.world.entities import EID
from repro.world.geometry import BoundingBox
from repro.world.population import Population, PopulationConfig


def make_world(num_people=40, vague_width=0.0, seed=0):
    population = Population(PopulationConfig(num_people=num_people, seed=seed))
    region = BoundingBox.square(300.0)
    grid = CellGrid(region, cells_per_side=3, vague_width=vague_width)
    model = RandomWaypoint(region)
    traces = generate_traces(
        model,
        person_ids=[p.person_id for p in population.people],
        duration=200.0,
        dt=10.0,
        seed=seed + 1,
    )
    return population, grid, traces


def build(population, grid, traces, e_config=None, v_config=None, builder_config=None):
    builder = ScenarioBuilder(
        population=population,
        grid=grid,
        e_model=ESensingModel(e_config),
        v_model=VSensingModel(population.appearance, v_config),
        config=builder_config,
    )
    return builder.build(traces)


class TestBuilderConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_ticks": 0},
            {"inclusive_threshold": 0.0},
            {"inclusive_threshold": 1.5},
            {"vague_threshold": 0.0},
            {"vague_threshold": 0.9, "inclusive_threshold": 0.8},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioBuilderConfig(**kwargs)


class TestIdealBuild:
    def test_ideal_e_and_v_sides_consistent(self):
        """With no noise and single-tick windows, the EID set and the
        detected-VID set of every scenario describe the same people."""
        population, grid, traces = make_world()
        store = build(population, grid, traces)
        for key in store.keys:
            scenario = store.get(key)
            e_people = {
                population.person_of_eid(e).person_id
                for e in scenario.e.inclusive
            }
            v_people = {
                population.person_of_vid(d.true_vid).person_id
                for d in scenario.v.detections
            }
            assert e_people == v_people
            assert not scenario.e.vague

    def test_every_person_in_exactly_one_scenario_per_tick(self):
        population, grid, traces = make_world()
        store = build(population, grid, traces)
        for tick in store.ticks:
            eids = []
            for key in store.keys_at_tick(tick):
                eids.extend(store.e_scenario(key).inclusive)
            assert sorted(eids) == sorted(EID(p.person_id) for p in population.people)

    def test_scenario_count_bounded_by_cells_times_ticks(self):
        population, grid, traces = make_world()
        store = build(population, grid, traces)
        assert len(store) <= grid.num_cells * traces.num_ticks

    def test_deterministic(self):
        population, grid, traces = make_world()
        a = build(population, grid, traces)
        b = build(population, grid, traces)
        assert a.keys == b.keys
        for key in a.keys:
            assert a.e_scenario(key).inclusive == b.e_scenario(key).inclusive


class TestPracticalBuild:
    def test_vague_attribution_under_drift(self):
        population, grid, traces = make_world(vague_width=10.0)
        store = build(
            population, grid, traces, e_config=ESensingConfig(drift_sigma=8.0)
        )
        vague_total = sum(len(s.vague) for s in store.e_scenarios())
        inclusive_total = sum(len(s.inclusive) for s in store.e_scenarios())
        assert vague_total > 0, "drift near borders must mark some EIDs vague"
        # A 10 m band on 100 m cells covers ~36% of the area, so the
        # vague fraction should be visible but not dominant.
        assert inclusive_total > vague_total, "most sightings stay inclusive"

    def test_e_miss_thins_scenarios(self):
        population, grid, traces = make_world()
        full = build(population, grid, traces)
        thinned = build(
            population, grid, traces, e_config=ESensingConfig(miss_rate=0.5)
        )
        full_count = sum(len(s.inclusive) for s in full.e_scenarios())
        thin_count = sum(len(s.inclusive) for s in thinned.e_scenarios())
        assert thin_count < 0.7 * full_count

    def test_v_miss_thins_detections(self):
        population, grid, traces = make_world()
        full = build(population, grid, traces)
        thinned = build(
            population, grid, traces, v_config=VSensingConfig(miss_rate=0.4)
        )
        assert thinned.total_detections() < 0.75 * full.total_detections()

    def test_windowing_reduces_scenario_count(self):
        population, grid, traces = make_world()
        single = build(population, grid, traces)
        windowed = build(
            population,
            grid,
            traces,
            builder_config=ScenarioBuilderConfig(window_ticks=4),
        )
        assert max(s.tick for s in windowed.keys) <= traces.num_ticks // 4
        assert len(windowed) < len(single)

    def test_window_occupancy_thresholds(self):
        """An EID seen in only a sliver of the window is excluded; one
        seen throughout is inclusive."""
        population, grid, traces = make_world()
        store = build(
            population,
            grid,
            traces,
            builder_config=ScenarioBuilderConfig(
                window_ticks=4, inclusive_threshold=0.75, vague_threshold=0.5
            ),
        )
        # People far from borders who do not cross cells in 40 s are
        # inclusive; the store must have substantial inclusive content.
        assert sum(len(s.inclusive) for s in store.e_scenarios()) > 0

    def test_window_larger_than_trace_rejected(self):
        population, grid, traces = make_world()
        with pytest.raises(ValueError, match="fewer than one"):
            build(
                population,
                grid,
                traces,
                builder_config=ScenarioBuilderConfig(window_ticks=10_000),
            )

    def test_no_device_people_absent_from_e_side(self):
        population = Population(
            PopulationConfig(num_people=40, device_carry_rate=0.5, seed=5)
        )
        region = BoundingBox.square(300.0)
        grid = CellGrid(region, cells_per_side=3)
        traces = generate_traces(
            RandomWaypoint(region),
            person_ids=[p.person_id for p in population.people],
            duration=100.0,
            dt=10.0,
            seed=6,
        )
        store = build(population, grid, traces)
        device_eids = set(population.eids)
        for scenario in store.e_scenarios():
            assert scenario.eids <= device_eids
        # ...but everyone still shows up on the V side somewhere.
        seen_vids = {
            d.true_vid for key in store.keys for d in store.v_scenario(key)
        }
        assert len(seen_vids) == 40
