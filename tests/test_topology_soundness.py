"""Property tests pinning the topology layer's soundness contract.

The whole point of camera-graph pruning is that it is *free* on honest
evidence: the fitted reachability envelope covers every sighting pair
of every fitted trace by construction (see
:mod:`repro.topology.graph`), so on a clean world the pruner is the
identity, the transition prior multiplies by exactly 1.0, and a
topology-enabled :class:`~repro.core.vid_filtering.VIDFilter` is
byte-identical to the topology-blind baseline — same evidence lists,
same chosen detections, same simulated comparison bill, same accuracy.
These tests pin each link of that chain, plus the pruner's structural
invariants (partition, order preservation, idempotence, keep-all
guard) on adversarial synthetic graphs.
"""

import functools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.set_splitting import SetSplitter, SplitConfig
from repro.core.vid_filtering import FilterConfig, VIDFilter
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.metrics.accuracy import accuracy_of
from repro.metrics.timing import SimulatedClock
from repro.sensing.scenarios import ScenarioKey
from repro.topology import (
    CameraGraph,
    EdgeStats,
    ReachabilityPruner,
    TopologyConfig,
    TransitModel,
    TransitionPrior,
    consistency_matrix,
)


@functools.lru_cache(maxsize=None)
def clean_world(seed: int = 7):
    """A small, well-behaved world (no drift, no misattribution)."""
    return build_dataset(
        ExperimentConfig(
            num_people=70,
            cells_per_side=3,
            duration=400.0,
            mobility_model="random_walk",
            seed=seed,
        )
    )


@functools.lru_cache(maxsize=None)
def true_sightings(seed: int = 7):
    """Each EID's honest evidence list, straight from the E-Scenarios."""
    dataset = clean_world(seed)
    evidence = {}
    for key in dataset.store.keys:
        for eid in dataset.store.e_scenario(key).inclusive:
            evidence.setdefault(eid, []).append(key)
    return {
        eid: sorted(keys, key=lambda k: (k.tick, k.cell_id))
        for eid, keys in evidence.items()
    }


def edge(count=3, mean=1.0, var=0.0, lo=1, hi=1):
    return EdgeStats(
        count=count, mean_ticks=mean, var_ticks=var,
        min_ticks=lo, quantile_ticks=hi,
    )


def line_model(num_cells: int) -> TransitModel:
    """A directed line graph ``0 -> 1 -> ... -> n-1`` (hops = index gap)."""
    edges = {(i, i + 1): edge() for i in range(num_cells - 1)}
    return TransitModel(CameraGraph(num_cells, edges, 0.95), 1.0)


class TestEnvelopeCoversFittedTraces:
    """``Δt >= hops`` holds for every sighting pair of every fitted
    trace — the construction argument, checked empirically."""

    @settings(max_examples=60, deadline=None)
    @given(
        person=st.integers(0, 69),
        t1=st.integers(0, 200),
        t2=st.integers(0, 200),
    )
    def test_every_trace_pair_is_reachable(self, person, t1, t2):
        dataset = clean_world()
        person_ids = dataset.traces.person_ids
        trajectory = dataset.traces.trajectory(
            person_ids[person % len(person_ids)]
        )
        cells = [dataset.grid.locate(p).cell_id for p in trajectory.points]
        a, b = t1 % len(cells), t2 % len(cells)
        assert dataset.topology.reachable(cells[a], a, cells[b], b)

    def test_consistency_matrix_all_true_on_a_real_trace(self):
        dataset = clean_world()
        trajectory = dataset.traces.trajectory(dataset.traces.person_ids[0])
        keys = [
            ScenarioKey(cell_id=dataset.grid.locate(p).cell_id, tick=t)
            for t, p in enumerate(trajectory.points[:40])
        ]
        assert consistency_matrix(dataset.topology, keys).all()


class TestPruningIdentityOnCleanWorlds:
    """Honest evidence is mutually consistent, so pruning keeps it all."""

    @settings(max_examples=40, deadline=None)
    @given(pick=st.integers(0, 10_000))
    def test_prune_keeps_every_true_sighting(self, pick):
        dataset = clean_world()
        evidence = true_sightings()
        eids = sorted(evidence)
        keys = evidence[eids[pick % len(eids)]]
        kept, dropped = ReachabilityPruner(dataset.topology).prune(keys)
        assert kept == list(keys)
        assert dropped == []

    @settings(max_examples=40, deadline=None)
    @given(pick=st.integers(0, 10_000))
    def test_prior_is_exactly_one_on_true_sightings(self, pick):
        dataset = clean_world()
        evidence = true_sightings()
        eids = sorted(evidence)
        keys = evidence[eids[pick % len(eids)]]
        weights = TransitionPrior(dataset.topology).weights(keys)
        np.testing.assert_array_equal(weights, np.ones(len(keys)))


class TestPrunerInvariants:
    """Structural properties on synthetic graphs and arbitrary keys."""

    #: Sighting lists over a 6-cell directed line graph: (cell, tick).
    sightings = st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 30)),
        min_size=0,
        max_size=16,
        unique=True,
    )

    @settings(max_examples=80, deadline=None)
    @given(entries=sightings)
    def test_prune_is_an_order_preserving_partition(self, entries):
        keys = [ScenarioKey(cell_id=c, tick=t) for c, t in entries]
        pruner = ReachabilityPruner(line_model(6))
        kept, dropped = pruner.prune(keys)
        assert sorted(kept + dropped, key=keys.index) == keys
        # Order within each side follows the input order.
        for side in (kept, dropped):
            indices = [keys.index(k) for k in side]
            assert indices == sorted(indices)

    @settings(max_examples=80, deadline=None)
    @given(entries=sightings)
    def test_prune_is_idempotent(self, entries):
        keys = [ScenarioKey(cell_id=c, tick=t) for c, t in entries]
        pruner = ReachabilityPruner(line_model(6))
        kept, _ = pruner.prune(keys)
        again, dropped_again = pruner.prune(kept)
        assert again == kept
        assert dropped_again == []

    @settings(max_examples=80, deadline=None)
    @given(entries=sightings)
    def test_survivors_are_pairwise_consistent_or_guard_fired(self, entries):
        keys = [ScenarioKey(cell_id=c, tick=t) for c, t in entries]
        model = line_model(6)
        pruner = ReachabilityPruner(model)
        kept, dropped = pruner.prune(keys)
        if dropped:
            # The loop converged: survivors form a consistent clique.
            assert consistency_matrix(model, kept).all()
        else:
            assert kept == list(keys)

    def test_misattributed_key_is_peeled_off(self):
        """A trajectory walking the line 0->1->2->... with one sighting
        teleported far down the line must lose exactly that key."""
        keys = [ScenarioKey(cell_id=min(t, 5), tick=t) for t in range(12)]
        bad = ScenarioKey(cell_id=5, tick=1)  # 5 hops away, 1 tick in
        corrupted = keys[:1] + [bad] + keys[2:]
        kept, dropped = ReachabilityPruner(line_model(6)).prune(corrupted)
        assert dropped == [bad]
        assert kept == keys[:1] + keys[2:]

    def test_keep_all_guard_without_a_consistent_core(self):
        """When no sizable mutually consistent core exists, the pruner
        must keep everything rather than guess."""
        # Same tick, all different cells: every pair is inconsistent,
        # the loop whittles down to a single survivor, and 4*1 < 6
        # trips the guard.
        keys = [ScenarioKey(cell_id=c, tick=3) for c in range(6)]
        kept, dropped = ReachabilityPruner(line_model(6)).prune(keys)
        assert kept == keys
        assert dropped == []


class TestTopologyEqualsBaselineOnCleanWorlds:
    """The end-to-end contract: on a well-behaved world the
    topology-enabled filter is indistinguishable from the baseline —
    pruning is the identity and the prior multiplies by 1.0."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.sampled_from([7, 11]), num_targets=st.sampled_from([8, 14]))
    def test_full_filter_equivalence(self, seed, num_targets):
        dataset = clean_world(seed)
        targets = list(dataset.sample_targets(num_targets, seed=1))
        split = SetSplitter(dataset.store, SplitConfig()).run(targets)

        runs = {}
        for label, config in (
            ("baseline", FilterConfig()),
            (
                "topology",
                FilterConfig(
                    topology=TopologyConfig(model=dataset.topology)
                ),
            ),
        ):
            clock = SimulatedClock()
            results = VIDFilter(dataset.store, config, clock).match(
                split.evidence
            )
            runs[label] = (results, clock)

        base_results, base_clock = runs["baseline"]
        topo_results, topo_clock = runs["topology"]
        assert any(not base_results[t].is_empty for t in targets)
        for t in targets:
            a, b = base_results[t], topo_results[t]
            assert a.scenario_keys == b.scenario_keys
            assert a.chosen == b.chosen
            assert a.agreement == b.agreement
            np.testing.assert_allclose(a.scores, b.scores, rtol=1e-12)
        assert base_clock.comparisons == topo_clock.comparisons
        base_acc = accuracy_of(
            {t: base_results[t].chosen for t in targets}, dataset.truth, targets
        )
        topo_acc = accuracy_of(
            {t: topo_results[t].chosen for t in targets}, dataset.truth, targets
        )
        assert base_acc.percentage == topo_acc.percentage

    def test_prior_never_flips_the_per_scenario_choice(self):
        """The prior's weight is uniform *within* a scenario, so the
        per-scenario argmax — and the majority vote built on it — is
        unchanged even on evidence the prior downweights."""
        dataset = clean_world()
        evidence = true_sightings()
        eids = sorted(evidence)
        # Corrupt one sighting per target so the prior actually bites.
        rng = np.random.default_rng(0)
        corrupted = {}
        for eid in eids[:10]:
            keys = list(evidence[eid])
            if len(keys) < 3:
                continue
            victim = int(rng.integers(len(keys)))
            candidates = [
                k
                for k in dataset.store.keys_at_tick(keys[victim].tick)
                if k.cell_id != keys[victim].cell_id
            ]
            if not candidates:
                continue
            keys[victim] = candidates[int(rng.integers(len(candidates)))]
            corrupted[eid] = keys
        assert corrupted, "no corruptible targets found"

        prior_only = FilterConfig(
            topology=TopologyConfig(
                model=dataset.topology, prune=False, prior=True
            )
        )
        base = VIDFilter(dataset.store, FilterConfig()).match(corrupted)
        prior = VIDFilter(dataset.store, prior_only).match(corrupted)
        for eid in corrupted:
            assert base[eid].scenario_keys == prior[eid].scenario_keys
            assert base[eid].chosen == prior[eid].chosen
