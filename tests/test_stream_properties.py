"""Property tests for the streaming assembler's batch-equivalence
guarantee:

* an **in-order** replay of any small world through the streaming
  pipeline reproduces the batch builder's scenario store exactly;
* any **bounded shuffle** of the arrival order (jitter within the
  assembler's ``allowed_lateness``) reaches the same end state;
* the assembler alone is order-insensitive for hand-built event
  streams permuted within the lateness bound.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.sensing.builder import CellSighting, VFrame
from repro.sensing.scenarios import ScenarioStore
from repro.stream import (
    ReplayConfig,
    StoreSink,
    StreamConfig,
    StreamPipeline,
    TraceReplaySource,
    WindowAssembler,
    diff_stores,
)
from repro.world.entities import EID


@pytest.fixture(scope="module")
def replay_world():
    """One world shared by the arrival-order properties."""
    return build_dataset(
        ExperimentConfig(
            num_people=24,
            cells_per_side=3,
            duration=120.0,
            sample_dt=10.0,
            seed=13,
        )
    )


@settings(max_examples=8, deadline=None)
@given(
    num_people=st.integers(min_value=5, max_value=20),
    cells=st.integers(min_value=2, max_value=3),
    window_ticks=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_in_order_replay_equals_batch_for_any_world(
    num_people, cells, window_ticks, seed
):
    config = ExperimentConfig(
        num_people=num_people,
        cells_per_side=cells,
        duration=80.0,
        sample_dt=10.0,
        window_ticks=window_ticks,
        seed=seed,
    )
    dataset = build_dataset(config)
    store = ScenarioStore([])
    report = StreamPipeline(
        TraceReplaySource.from_dataset(dataset),
        StoreSink(store),
        StreamConfig.from_builder(config.builder_config(), synchronous=True),
    ).run()
    assert report.late_dropped == 0
    assert diff_stores(dataset.store, store) == []


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    jitter=st.integers(min_value=1, max_value=5),
    jitter_seed=st.integers(min_value=0, max_value=10_000),
)
def test_bounded_shuffle_within_lateness_equals_batch(
    replay_world, jitter, jitter_seed
):
    store = ScenarioStore([])
    report = StreamPipeline(
        TraceReplaySource.from_dataset(
            replay_world,
            ReplayConfig(jitter_ticks=jitter, seed=jitter_seed),
        ),
        StoreSink(store),
        StreamConfig.from_builder(
            replay_world.config.builder_config(),
            synchronous=True,
            allowed_lateness=jitter,
        ),
    ).run()
    assert report.late_dropped == 0
    assert diff_stores(replay_world.store, store) == []


# ---------------------------------------------------------------------------
# assembler-only order insensitivity
# ---------------------------------------------------------------------------
@st.composite
def event_streams(draw):
    """A random in-order event stream over a few windows, plus a
    bounded-disorder permutation of it."""
    window_ticks = draw(st.integers(min_value=1, max_value=3))
    num_windows = draw(st.integers(min_value=1, max_value=4))
    num_ticks = window_ticks * num_windows
    events = []
    for tick in range(num_ticks):
        for cell in range(draw(st.integers(min_value=1, max_value=2))):
            for eid in draw(
                st.lists(
                    st.integers(min_value=0, max_value=5),
                    unique=True,
                    max_size=4,
                )
            ):
                events.append(
                    CellSighting(
                        tick=tick,
                        cell_id=cell,
                        eid=EID(eid),
                        vague=draw(st.booleans()),
                    )
                )
        if tick % window_ticks == window_ticks // 2:
            events.append(VFrame(tick=tick, cell_id=0, detections=()))
    lateness = draw(st.integers(min_value=1, max_value=3))
    # A bounded shuffle: sort by tick + U[0, lateness) mirrors the
    # replay source's jitter model.
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    keys = [event.tick + rng.uniform(0.0, lateness) for event in events]
    shuffled = [
        event
        for _key, _i, event in sorted(
            zip(keys, range(len(events)), events), key=lambda t: (t[0], t[1])
        )
    ]
    return window_ticks, lateness, events, shuffled


def _end_state(assembler, events):
    scenarios = {}
    for event in events:
        closed, _late = assembler.offer(event)
        for window in closed:
            for scenario in window.scenarios:
                scenarios[scenario.key] = scenario
    for window in assembler.flush():
        for scenario in window.scenarios:
            scenarios[scenario.key] = scenario
    return scenarios


@settings(max_examples=60, deadline=None)
@given(data=event_streams())
def test_assembler_is_order_insensitive_within_lateness(data):
    window_ticks, lateness, in_order, shuffled = data
    baseline = _end_state(WindowAssembler(window_ticks=window_ticks), in_order)
    reordered_assembler = WindowAssembler(
        window_ticks=window_ticks, allowed_lateness=lateness
    )
    reordered = _end_state(reordered_assembler, shuffled)
    assert reordered_assembler.late_dropped == 0
    assert set(baseline) == set(reordered)
    for key, scenario in baseline.items():
        other = reordered[key]
        assert scenario.e.inclusive == other.e.inclusive
        assert scenario.e.vague == other.e.vague
        assert scenario.v.detections == other.v.detections
