"""Wire-level tests: framing, NDJSON, and the request/response codecs.

No processes here — sockets are exercised with an in-process
``socketpair`` so the byte-level behaviour (short reads, oversized
frames, garbage payloads) is tested deterministically.
"""

import json
import socket
import struct

import pytest

from repro.cluster.codec import (
    CodecError,
    error_response,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    routing_key,
)
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    decode_line,
    encode_frame,
    encode_line,
    recv_frame,
    send_frame,
)
from repro.service.api import (
    STATUS_ERROR,
    STATUS_OK,
    HealthResponse,
    IngestTickRequest,
    IngestTickResponse,
    InvestigateRequest,
    InvestigateResponse,
    MatchRequest,
    MatchResponse,
    SLOCheck,
    TargetMatch,
)
from repro.world.entities import EID


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip_over_socketpair(self, pair):
        left, right = pair
        message = {"verb": "ping", "nested": {"a": [1, 2, 3]}, "text": "x\ny"}
        send_frame(left, message)
        assert recv_frame(right) == message

    def test_multiple_frames_stay_separated(self, pair):
        left, right = pair
        for i in range(5):
            send_frame(left, {"seq": i})
        for i in range(5):
            assert recv_frame(right) == {"seq": i}

    def test_eof_at_boundary_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_eof_mid_frame_raises_connection_closed(self, pair):
        left, right = pair
        frame = encode_frame({"verb": "ping"})
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_oversized_header_rejected_without_reading_payload(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_non_json_payload_rejected(self, pair):
        left, right = pair
        payload = b"\xff\xfenot json"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_non_object_payload_rejected(self, pair):
        left, right = pair
        payload = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_frame(right)


class TestNDJSON:
    def test_roundtrip(self):
        message = {"verb": "match", "targets": [1, 2]}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == message

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"   \n")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"42\n")


class TestRequestCodec:
    def test_match_roundtrip(self):
        request = MatchRequest(targets=(EID(3), EID(7)), algorithm="edp")
        wire = request_to_wire(request)
        assert wire["verb"] == "match"
        # wire form must be plain JSON, no dataclasses smuggled through
        json.dumps(wire)
        decoded = request_from_wire(json.loads(json.dumps(wire)))
        assert decoded == request

    def test_investigate_roundtrip(self):
        request = InvestigateRequest(eid=EID(11), min_shared=5)
        decoded = request_from_wire(request_to_wire(request))
        assert decoded == request

    def test_ingest_roundtrip_preserves_scenarios(self, ideal_dataset):
        scenarios = [
            ideal_dataset.store.get(key)
            for key in sorted(ideal_dataset.store.keys)[:3]
        ]
        request = IngestTickRequest(scenarios=tuple(scenarios))
        wire = json.loads(json.dumps(request_to_wire(request)))
        decoded = request_from_wire(wire)
        assert len(decoded.scenarios) == 3
        for original, restored in zip(scenarios, decoded.scenarios):
            assert restored.key == original.key
            assert len(restored.v) == len(original.v)

    def test_unknown_verb_rejected(self):
        with pytest.raises(CodecError):
            request_from_wire({"verb": "frobnicate"})

    def test_malformed_match_rejected(self):
        with pytest.raises(CodecError):
            request_from_wire({"verb": "match"})  # no targets

    def test_unencodable_request_rejected(self):
        with pytest.raises(CodecError):
            request_to_wire(object())


class TestResponseCodec:
    def test_match_roundtrip(self):
        response = MatchResponse(
            status=STATUS_OK,
            matches={
                EID(4): TargetMatch(
                    eid=EID(4), prediction=9, agreement=0.75, evidence=12
                )
            },
            cached=True,
            latency_s=0.125,
        )
        wire = json.loads(json.dumps(response_to_wire(response)))
        decoded = response_from_wire(wire)
        assert decoded.status == STATUS_OK
        assert decoded.cached is True
        assert decoded.matches[EID(4)].prediction == 9
        assert decoded.matches[EID(4)].agreement == pytest.approx(0.75)

    def test_investigate_roundtrip(self):
        response = InvestigateResponse(
            status=STATUS_OK,
            eid=EID(2),
            num_scenarios=6,
            presence=[(0, 1), (3, 2)],
            co_travelers=[(EID(5), 4)],
            shards_touched=3,
        )
        decoded = response_from_wire(
            json.loads(json.dumps(response_to_wire(response)))
        )
        assert decoded.eid == EID(2)
        assert decoded.presence == [(0, 1), (3, 2)]
        assert decoded.co_travelers == [(EID(5), 4)]

    def test_ingest_carries_emission_count_not_objects(self):
        response = IngestTickResponse(
            status=STATUS_OK, ingested=4, emissions=[object(), object()]
        )
        wire = response_to_wire(response)
        assert wire["emissions"] == 2
        decoded = response_from_wire(json.loads(json.dumps(wire)))
        assert decoded.ingested == 4
        assert decoded.emissions == []  # documented: count does not round-trip

    def test_health_roundtrip(self):
        response = HealthResponse(
            healthy=False,
            window_s=60.0,
            samples=100,
            checks=(
                SLOCheck(
                    name="p95", objective=0.1, observed=0.2, ok=False
                ),
            ),
            note="degraded",
        )
        decoded = response_from_wire(
            json.loads(json.dumps(response_to_wire(response)))
        )
        assert decoded.healthy is False
        assert decoded.checks[0].name == "p95"
        assert decoded.checks[0].ok is False

    def test_error_response_shape(self):
        wire = error_response("match", "worker exploded")
        assert wire == {
            "verb": "match",
            "status": STATUS_ERROR,
            "error": "worker exploded",
        }

    def test_unknown_verb_rejected(self):
        with pytest.raises(CodecError):
            response_from_wire({"verb": "nope", "status": "ok"})


class TestRoutingKey:
    def test_match_key_is_order_insensitive(self):
        a = routing_key({"verb": "match", "targets": [3, 1], "algorithm": "ss"})
        b = routing_key({"verb": "match", "targets": [1, 3], "algorithm": "ss"})
        assert a == b

    def test_match_key_varies_with_algorithm(self):
        a = routing_key({"verb": "match", "targets": [1], "algorithm": "ss"})
        b = routing_key({"verb": "match", "targets": [1], "algorithm": "mwm"})
        assert a != b

    def test_investigate_keys_on_eid(self):
        assert routing_key({"verb": "investigate", "eid": 9}) == "eid:9"

    def test_other_verbs_key_on_verb(self):
        assert routing_key({"verb": "stats"}) == "verb:stats"
