"""Tests for dataset persistence (save/load round trip)."""

import numpy as np
import pytest

from repro.core.matcher import EVMatcher
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.datagen.io import FORMAT_VERSION, load_dataset, save_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        ExperimentConfig(
            num_people=50,
            cells_per_side=2,
            duration=200.0,
            warmup=0.0,
            vague_width=20.0,
            e_drift_sigma=5.0,
            v_miss_rate=0.1,
            seed=13,
        )
    )


class TestRoundTrip:
    def test_suffix_enforced(self, dataset, tmp_path):
        written = save_dataset(dataset, tmp_path / "world")
        assert written.suffix == ".npz"
        assert written.exists()

    def test_store_identical(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "world.npz")
        loaded = load_dataset(path)
        assert loaded.store.keys == dataset.store.keys
        for key in dataset.store.keys:
            original = dataset.store.get(key)
            restored = loaded.store.get(key)
            assert restored.e.inclusive == original.e.inclusive
            assert restored.e.vague == original.e.vague
            assert [d.detection_id for d in restored.v.detections] == [
                d.detection_id for d in original.v.detections
            ]
            assert [d.true_vid for d in restored.v.detections] == [
                d.true_vid for d in original.v.detections
            ]
        np.testing.assert_allclose(
            loaded.store.get(dataset.store.keys[0]).v.feature_matrix(),
            dataset.store.get(dataset.store.keys[0]).v.feature_matrix(),
        )

    def test_config_and_truth_identical(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "world.npz")
        loaded = load_dataset(path)
        assert loaded.config == dataset.config
        assert loaded.truth == dataset.truth
        assert loaded.traces is None

    def test_matching_results_identical(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "world.npz")
        loaded = load_dataset(path)
        targets = list(dataset.sample_targets(15, seed=2))
        original = EVMatcher(dataset.store).match(targets)
        restored = EVMatcher(loaded.store).match(targets)
        assert original.predictions() == restored.predictions()

    def test_version_check(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "world.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.int64(FORMAT_VERSION + 1)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_dataset(path)

    def test_hex_dataset_roundtrip(self, tmp_path):
        from repro.world.cells import HexCellGrid

        dataset = build_dataset(
            ExperimentConfig(
                num_people=20,
                cell_shape="hex",
                hex_radius=120.0,
                region_side=300.0,
                duration=100.0,
                warmup=0.0,
                seed=3,
            )
        )
        loaded = load_dataset(save_dataset(dataset, tmp_path / "hex.npz"))
        assert isinstance(loaded.grid, HexCellGrid)
        assert loaded.store.keys == dataset.store.keys
