"""Tests for the spatiotemporal scenario index."""

import pytest

from repro.sensing.index import ScenarioIndex
from repro.world.entities import EID
from repro.world.geometry import BoundingBox, Point


@pytest.fixture(scope="module")
def index(request):
    ideal = request.getfixturevalue("ideal_dataset")
    return ScenarioIndex(ideal.store, ideal.grid)


class TestTemporalQueries:
    def test_tick_range(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        keys = index.in_tick_range(5, 10)
        assert keys
        assert all(5 <= k.tick <= 10 for k in keys)
        assert keys == sorted(keys)

    def test_empty_range_rejected(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        with pytest.raises(ValueError):
            index.in_tick_range(10, 5)

    def test_full_range_covers_store(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        ticks = ideal_dataset.store.ticks
        keys = index.in_tick_range(min(ticks), max(ticks))
        assert len(keys) == len(ideal_dataset.store)


class TestSpatialQueries:
    def test_needs_grid(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)  # no grid
        with pytest.raises(ValueError, match="grid"):
            index.in_region(BoundingBox(0, 0, 10, 10))

    def test_whole_region_hits_all_cells(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        cells = index.cells_intersecting(ideal_dataset.grid.region)
        assert len(cells) == ideal_dataset.grid.num_cells

    def test_small_box_hits_one_cell(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        cell = ideal_dataset.grid.cells[0]
        center = cell.center
        box = BoundingBox(center.x - 1, center.y - 1, center.x + 1, center.y + 1)
        assert index.cells_intersecting(box) == frozenset({cell.cell_id})

    def test_in_region_keys_belong_to_cells(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        box = BoundingBox(0, 0, 150, 150)
        cells = index.cells_intersecting(box)
        for key in index.in_region(box):
            assert key.cell_id in cells


class TestCombinedQueries:
    def test_window_is_intersection(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        box = BoundingBox(0, 0, 200, 200)
        window = set(index.window(box, 3, 8))
        spatial = set(index.in_region(box))
        temporal = set(index.in_tick_range(3, 8))
        assert window == spatial & temporal

    def test_around_point(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store, ideal_dataset.grid)
        keys = index.around(Point(150, 150), radius=10.0, first=0, last=5)
        assert keys
        for key in keys:
            cell = ideal_dataset.grid.cell(key.cell_id)
            assert cell.bounds.expanded(10.0).contains(Point(150, 150))
        with pytest.raises(ValueError):
            index.around(Point(0, 0), radius=-1.0, first=0, last=5)


class TestEIDLookups:
    def test_scenarios_of_contains_eid(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        eid = ideal_dataset.eids[0]
        keys = index.scenarios_of(eid)
        assert keys
        for key in keys:
            assert eid in ideal_dataset.store.e_scenario(key)

    def test_unknown_eid_empty(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        assert index.scenarios_of(EID(10**6)) == ()

    def test_presence_windows_cover_all_sightings(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        eid = ideal_dataset.eids[1]
        runs = index.presence_windows(eid)
        covered = {
            (cell, tick)
            for cell, first, last in runs
            for tick in range(first, last + 1)
        }
        sightings = {(k.cell_id, k.tick) for k in index.scenarios_of(eid)}
        assert sightings <= covered

    def test_presence_windows_are_maximal(self, ideal_dataset):
        index = ScenarioIndex(ideal_dataset.store)
        eid = ideal_dataset.eids[2]
        runs = index.presence_windows(eid)
        sightings = {(k.cell_id, k.tick) for k in index.scenarios_of(eid)}
        for cell, first, last in runs:
            # Every tick inside a run is a real sighting...
            for tick in range(first, last + 1):
                assert (cell, tick) in sightings
            # ...and the run cannot be extended on either side.
            assert (cell, first - 1) not in sightings
            assert (cell, last + 1) not in sightings
