"""Unit tests for the packed-bitset kernel layer (repro.core.accel)."""

import numpy as np
import pytest

from repro.core.accel import (
    CandidateMatrix,
    EIDInterner,
    ScenarioMatrix,
    matrix_for,
    pack_ids,
    popcount,
    unpack_ids,
)
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.world.entities import EID


def eids(*indices):
    return frozenset(EID(i) for i in indices)


def scenario(cell, tick, inclusive, vague=()):
    key = ScenarioKey(cell_id=cell, tick=tick)
    return EVScenario(
        e=EScenario(key=key, inclusive=eids(*inclusive), vague=eids(*vague)),
        v=VScenario(key=key, detections=()),
    )


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        ids = [0, 1, 63, 64, 127]
        row = pack_ids(ids, 2)
        assert row.dtype == np.uint64
        assert list(unpack_ids(row)) == ids

    def test_popcount_rows(self):
        rows = np.array([pack_ids([0, 63, 64], 2), pack_ids([], 2)])
        assert list(popcount(rows)) == [3, 0]

    def test_popcount_single_row_is_scalar(self):
        assert int(popcount(pack_ids(range(70), 2))) == 70


class TestEIDInterner:
    def test_dense_first_intern_order(self):
        interner = EIDInterner([EID(5), EID(2), EID(9)])
        assert [interner.id_of(EID(e)) for e in (5, 2, 9)] == [0, 1, 2]
        assert interner.eid_of(1) == EID(2)
        assert len(interner) == 3

    def test_pack_skips_unknown_eids(self):
        interner = EIDInterner([EID(1), EID(2)])
        row = interner.pack(eids(1, 2, 77))
        assert interner.unpack(row) == eids(1, 2)

    def test_num_words_grows(self):
        interner = EIDInterner()
        assert interner.num_words == 1
        for i in range(65):
            interner.intern(EID(i))
        assert interner.num_words == 2


class TestScenarioMatrix:
    def test_rows_mirror_store(self):
        store = ScenarioStore(
            [scenario(0, 0, {0, 1}, {2}), scenario(1, 1, {2, 3})]
        )
        matrix = ScenarioMatrix(store)
        key = ScenarioKey(0, 0)
        assert len(matrix) == 2
        assert matrix.interner.unpack(matrix.inclusive_row(key)) == eids(0, 1)
        assert matrix.interner.unpack(matrix.allowed_row(key)) == eids(0, 1, 2)

    def test_sides_vague_rule(self):
        store = ScenarioStore([scenario(0, 0, {0}, {1})])
        matrix = ScenarioMatrix(store)
        key = ScenarioKey(0, 0)
        ids, allowed = matrix.sides(key, merge_vague=False)
        assert list(ids) == [matrix.interner.id_of(EID(0))]
        merged_ids, merged_allowed = matrix.sides(key, merge_vague=True)
        assert len(merged_ids) == 2
        assert np.array_equal(allowed, merged_allowed)

    def test_live_add_syncs_incrementally(self):
        store = ScenarioStore([scenario(0, 0, {0, 1})])
        matrix = ScenarioMatrix(store)
        assert matrix.sync() == 0  # nothing new
        store.add(scenario(1, 1, {1, 2}))
        assert ScenarioKey(1, 1) not in matrix
        assert matrix.sync() == 1
        key = ScenarioKey(1, 1)
        assert matrix.interner.unpack(matrix.inclusive_row(key)) == eids(1, 2)
        # EID 2 was first seen live: appended to the interner, nobody
        # renumbered.
        assert matrix.interner.id_of(EID(2)) == 2

    def test_growth_past_word_and_row_capacity(self):
        store = ScenarioStore([scenario(0, 0, set(range(10)))])
        matrix = ScenarioMatrix(store)
        for i in range(70):
            store.add(scenario(1 + i, 1 + i, {100 + i, i % 10}))
        matrix.sync()
        assert len(matrix) == 71
        assert matrix.num_words >= 2
        key = ScenarioKey(70, 70)
        assert matrix.interner.unpack(matrix.inclusive_row(key)) == eids(169, 9)

    def test_co_occurrence_counts(self):
        store = ScenarioStore(
            [
                scenario(0, 0, {0, 1}, {3}),
                scenario(1, 1, {0, 1, 2}),
                scenario(2, 2, {1, 2}),
            ]
        )
        matrix = ScenarioMatrix(store)
        counts = matrix.co_occurrence_counts(
            [ScenarioKey(0, 0), ScenarioKey(1, 1)]
        )
        of = lambda e: int(counts[matrix.interner.id_of(EID(e))])
        assert (of(0), of(1), of(2)) == (2, 2, 1)
        assert of(3) == 0  # vague bits do not count
        assert not matrix.co_occurrence_counts([]).any()

    def test_matrix_for_is_shared_per_store(self):
        store = ScenarioStore([scenario(0, 0, {0, 1})])
        assert matrix_for(store) is matrix_for(store)


class TestCandidateMatrix:
    def test_unobserved_universe_eids_survive_until_first_evidence(self):
        store = ScenarioStore([scenario(0, 0, {0, 1}), scenario(1, 1, {0})])
        matrix = ScenarioMatrix(store)
        universe = eids(0, 1, 99)  # EID 99 never observed
        state = CandidateMatrix(matrix, [EID(0)], universe)
        assert state.extras == eids(99)
        assert state.candidates_of(EID(0)) == universe
        helped = state.apply(ScenarioKey(0, 0), False, lambda t: True)
        assert helped == [EID(0)]
        assert state.candidates_of(EID(0)) == eids(0, 1)

    def test_apply_deactivates_singletons(self):
        store = ScenarioStore([scenario(0, 0, {0}), scenario(1, 1, {0, 1})])
        matrix = ScenarioMatrix(store)
        state = CandidateMatrix(matrix, [EID(0)], eids(0, 1))
        assert state.any_active
        state.apply(ScenarioKey(0, 0), False, lambda t: True)
        assert not state.any_active
        assert state.candidates_of(EID(0)) == eids(0)

    def test_score_counts_helped_targets_without_committing(self):
        store = ScenarioStore([scenario(0, 0, {0, 1})])
        matrix = ScenarioMatrix(store)
        state = CandidateMatrix(matrix, [EID(0), EID(1), EID(2)], eids(0, 1, 2))
        assert state.score(ScenarioKey(0, 0), False) == 2
        assert state.candidates_of(EID(0)) == eids(0, 1, 2)  # unchanged

    def test_diversity_veto_blocks_commit(self):
        store = ScenarioStore([scenario(0, 0, {0, 1})])
        matrix = ScenarioMatrix(store)
        state = CandidateMatrix(matrix, [EID(0)], eids(0, 1, 2))
        assert state.apply(ScenarioKey(0, 0), False, lambda t: False) == []
        assert state.candidates_of(EID(0)) == eids(0, 1, 2)
