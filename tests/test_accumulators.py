"""Tests for Spark-style accumulators."""

import pytest

from repro.mapreduce import EVSparkContext, MapReduceEngine
from repro.mapreduce.accumulators import Accumulator, AccumulatorRegistry
from repro.mapreduce.failures import FailurePolicy


class TestAccumulator:
    def test_add_and_value(self):
        acc = Accumulator("n")
        acc.add(3)
        acc.add(4)
        assert acc.value == 7

    def test_custom_combine(self):
        acc = Accumulator("max", initial=0, combine=max)
        acc.add(5)
        acc.add(2)
        assert acc.value == 5

    def test_reset(self):
        acc = Accumulator("n")
        acc.add(10)
        acc.reset()
        assert acc.value == 0

    def test_repr(self):
        acc = Accumulator("hits")
        acc.add(1)
        assert "hits=1" in repr(acc)

    def test_thread_safety(self):
        import threading

        acc = Accumulator("n")

        def worker():
            for _ in range(1000):
                acc.add(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert acc.value == 8000


class TestRegistry:
    def test_create_is_idempotent(self):
        registry = AccumulatorRegistry()
        a = registry.create("x")
        b = registry.create("x")
        assert a is b

    def test_snapshot(self):
        registry = AccumulatorRegistry()
        registry.create("a").add(1)
        registry.create("b").add(2)
        assert registry.snapshot() == {"a": 1, "b": 2}


class TestWithJobs:
    def test_counts_through_rdd_pipeline(self):
        sc = EVSparkContext(default_partitions=4)
        dropped = sc.accumulator("dropped")

        def keep(x):
            if x % 3 == 0:
                dropped.add(1)
                return False
            return True

        kept = sc.parallelize(range(30)).filter(keep).count()
        assert kept == 20
        assert dropped.value == 10
        assert sc.accumulators.snapshot()["dropped"] == 10

    def test_retry_overcounting_caveat(self):
        """Failed attempts that already added are NOT rolled back —
        the documented Spark-faithful behaviour."""
        engine = MapReduceEngine(
            failure_policy=FailurePolicy(failure_rate=0.4, max_attempts=12, seed=7)
        )
        sc = EVSparkContext(engine=engine, default_partitions=8)
        seen = sc.accumulator("seen")
        total = sc.parallelize(range(40), 8).map(
            lambda x: (seen.add(1), x)[1]
        ).count()
        assert total == 40
        # The injector's check runs before the task body, so with this
        # engine failures fire pre-execution and counts stay exact;
        # the API contract still only promises >=.
        assert seen.value >= 40
