"""Unit tests for the topology layer: graph fitting, the reachability
envelope, pruner/prior behavior on crafted evidence, configuration
validation, ``.npz`` persistence, the V stage's topology counters and
events, the topology-enabled cluster worker, and convoy queries."""

import numpy as np
import pytest

from repro.core.vid_filtering import FilterConfig, VIDFilter
from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset
from repro.datagen.io import load_dataset, save_dataset
from repro.fusion import Convoy, ConvoyQuery, find_convoys
from repro.obs import (
    EventLog,
    MetricsRegistry,
    set_event_log,
    set_registry,
)
from repro.obs import events as ev
from repro.sensing.scenarios import (
    EScenario,
    EVScenario,
    ScenarioKey,
    ScenarioStore,
    VScenario,
)
from repro.topology import (
    CameraGraph,
    EdgeStats,
    ReachabilityPruner,
    TopologyConfig,
    TransitModel,
    TransitionPrior,
)
from repro.world.entities import EID


# -- fixtures and hand-built worlds ------------------------------------


class _Cell:
    def __init__(self, cell_id):
        self.cell_id = cell_id


class LineGrid:
    """A fake 1-D grid: point ``p`` lives in cell ``int(p)``; cells
    ``i`` and ``i+1`` are neighbors (what fit's coverage measures)."""

    def __init__(self, num_cells=4):
        self.num_cells = num_cells

    def locate(self, p):
        return _Cell(int(p))

    def __iter__(self):
        return iter(_Cell(i) for i in range(self.num_cells))

    def neighbors(self, cell):
        out = []
        if cell.cell_id > 0:
            out.append(_Cell(cell.cell_id - 1))
        if cell.cell_id < self.num_cells - 1:
            out.append(_Cell(cell.cell_id + 1))
        return out


class _Trajectory:
    def __init__(self, points):
        self.points = points


def edge(count=1, mean=1.0, var=0.0, lo=1, hi=1):
    return EdgeStats(
        count=count, mean_ticks=mean, var_ticks=var,
        min_ticks=lo, quantile_ticks=hi,
    )


def line_model(num_cells=6, quantile_ticks=1):
    """Directed line ``0 -> 1 -> ... -> n-1`` with unit transits."""
    edges = {
        (i, i + 1): edge(hi=quantile_ticks)
        for i in range(num_cells - 1)
    }
    return TransitModel(CameraGraph(num_cells, edges, 0.95), 1.0)


@pytest.fixture()
def small_dataset():
    return build_dataset(
        ExperimentConfig(
            num_people=50, cells_per_side=3, duration=300.0, seed=9
        )
    )


# -- fitting -----------------------------------------------------------


class TestTransitModelFit:
    def test_fit_learns_edges_and_enter_to_enter_times(self):
        # Cells over ticks: 0 0 1 1 1 2 — two transitions.
        traces = [_Trajectory([0.0, 0.4, 1.0, 1.2, 1.8, 2.0])]
        model = TransitModel.fit(traces, LineGrid(4))
        graph = model.graph
        assert graph.num_edges == 2
        s01 = graph.edge(0, 1)
        assert (s01.count, s01.min_ticks) == (1, 2)  # entered 0, left at 2
        s12 = graph.edge(1, 2)
        assert (s12.count, s12.min_ticks) == (1, 3)  # dwelt 3 ticks in 1
        # 2 fitted of 6 directed neighbor pairs on the 4-cell line.
        assert model.coverage == pytest.approx(2 / 6)

    def test_fit_aggregates_repeat_traversals(self):
        traces = [
            _Trajectory([0.0, 1.0, 0.0, 1.0]),  # 0->1, 1->0, 0->1
            _Trajectory([0.0, 1.0]),
        ]
        model = TransitModel.fit(traces, LineGrid(2))
        assert model.graph.edge(0, 1).count == 3
        assert model.graph.edge(1, 0).count == 1
        assert model.coverage == 1.0

    def test_fit_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            TransitModel.fit([], LineGrid(2), quantile=0.0)

    def test_describe_summarizes_the_graph(self):
        traces = [_Trajectory([0.0, 1.0, 2.0])]
        summary = TransitModel.fit(traces, LineGrid(3)).describe()
        assert summary["nodes"] == 3.0
        assert summary["edges"] == 2.0
        assert summary["traversals"] == 2.0


class TestCameraGraph:
    def test_hop_matrix_on_a_line(self):
        graph = line_model(4).graph
        assert graph.hop_distance(0, 3) == 3
        assert graph.hop_distance(0, 0) == 0
        assert graph.hop_distance(3, 0) == -1  # directed: no way back

    def test_reachable_semantics(self):
        graph = line_model(4).graph
        assert graph.reachable(0, 2, 2)
        assert not graph.reachable(0, 2, 1)  # too few ticks
        assert not graph.reachable(2, 0, 99)  # no path at all
        assert graph.reachable(1, 1, 0)  # staying put is free
        assert not graph.reachable(1, 1, -1)  # time never runs backwards

    def test_model_reachable_is_order_free(self):
        model = line_model(4)
        assert model.reachable(0, 5, 2, 8)
        assert model.reachable(2, 8, 0, 5)  # swapped argument order

    def test_validation(self):
        with pytest.raises(ValueError, match="self-loop"):
            CameraGraph(3, {(1, 1): edge()}, 0.95)
        with pytest.raises(ValueError, match="outside cell range"):
            CameraGraph(3, {(0, 7): edge()}, 0.95)
        with pytest.raises(ValueError, match="quantile"):
            CameraGraph(3, {}, 1.5)
        with pytest.raises(ValueError, match="count"):
            edge(count=0)
        with pytest.raises(ValueError, match="quantile_ticks"):
            EdgeStats(
                count=1, mean_ticks=1.0, var_ticks=0.0,
                min_ticks=3, quantile_ticks=2,
            )


# -- pruner and prior --------------------------------------------------


class TestReachabilityPruner:
    def test_consistent_evidence_passes_untouched(self):
        keys = [ScenarioKey(cell_id=min(t, 5), tick=t) for t in range(8)]
        kept, dropped = ReachabilityPruner(line_model(6)).prune(keys)
        assert (kept, dropped) == (keys, [])

    def test_single_misattribution_is_dropped(self):
        keys = [ScenarioKey(cell_id=min(t, 5), tick=t) for t in range(10)]
        bad = ScenarioKey(cell_id=5, tick=1)  # 5 hops away after 1 tick
        kept, dropped = ReachabilityPruner(line_model(6)).prune(
            keys[:1] + [bad] + keys[2:]
        )
        assert dropped == [bad]
        assert kept == keys[:1] + keys[2:]

    def test_trivial_lists(self):
        pruner = ReachabilityPruner(line_model(3))
        assert pruner.prune([]) == ([], [])
        lone = [ScenarioKey(cell_id=2, tick=0)]
        assert pruner.prune(lone) == (lone, [])


class TestTransitionPrior:
    def test_weights_bounds_and_identity(self):
        model = line_model(6)
        prior = TransitionPrior(model, prior_weight=0.25)
        clean = [ScenarioKey(cell_id=t, tick=t) for t in range(5)]
        np.testing.assert_array_equal(prior.weights(clean), np.ones(5))
        corrupted = clean[:4] + [ScenarioKey(cell_id=0, tick=4)]
        weights = prior.weights(corrupted)
        assert ((weights >= 0.25) & (weights <= 1.0)).all()
        assert weights[-1] < 1.0  # the impossible key is downweighted

    def test_invalid_prior_weight(self):
        with pytest.raises(ValueError, match="prior_weight"):
            TransitionPrior(line_model(3), prior_weight=0.0)


class TestTopologyConfigValidation:
    def test_model_is_required(self):
        with pytest.raises(ValueError, match="model"):
            TopologyConfig(model=None)

    def test_prior_weight_validated(self):
        with pytest.raises(ValueError, match="prior_weight"):
            TopologyConfig(model=line_model(3), prior_weight=2.0)

    def test_filter_config_rejects_non_topology_payload(self):
        with pytest.raises(ValueError, match="topology"):
            FilterConfig(topology="not a config")

    def test_filter_config_accepts_a_real_config(self):
        config = FilterConfig(topology=TopologyConfig(model=line_model(3)))
        assert config.topology.prune and config.topology.prior


# -- persistence -------------------------------------------------------


class TestPersistence:
    def test_npz_roundtrip_preserves_the_fitted_graph(
        self, small_dataset, tmp_path
    ):
        path = save_dataset(small_dataset, tmp_path / "world.npz")
        reloaded = load_dataset(path)
        assert reloaded.topology is not None
        # Edge means ride through float64 arrays; compare numerically.
        assert reloaded.topology.describe() == pytest.approx(
            small_dataset.topology.describe()
        )
        np.testing.assert_array_equal(
            reloaded.topology.graph.hops, small_dataset.topology.graph.hops
        )

    def test_pre_topology_files_load_with_none(self, small_dataset, tmp_path):
        small_dataset.topology = None
        path = save_dataset(small_dataset, tmp_path / "old.npz")
        assert load_dataset(path).topology is None

    def test_to_from_arrays_roundtrip(self):
        model = line_model(5, quantile_ticks=3)
        arrays = model.to_arrays()
        back = TransitModel.from_arrays(
            arrays["topo_edges"], arrays["topo_stats"], arrays["topo_meta"]
        )
        assert back.describe() == model.describe()
        assert back.transit_bound(0, 1) == 3


# -- V-stage counters and events ---------------------------------------


class TestVStageTopologyTelemetry:
    def _corrupted_evidence(self, dataset, count=6):
        """Honest evidence with one same-tick different-cell misread."""
        store = dataset.store
        evidence = {}
        for key in store.keys:
            for eid in store.e_scenario(key).inclusive:
                evidence.setdefault(eid, []).append(key)
        corrupted = {}
        for eid in sorted(evidence):
            keys = sorted(evidence[eid], key=lambda k: (k.tick, k.cell_id))
            if len(keys) < 8:
                continue
            victim = len(keys) // 2
            elsewhere = [
                k
                for k in store.keys_at_tick(keys[victim].tick)
                if k.cell_id != keys[victim].cell_id
                and len(store.v_scenario(k)) > 0
            ]
            if not elsewhere:
                continue
            keys[victim] = elsewhere[0]
            corrupted[eid] = keys
            if len(corrupted) >= count:
                break
        assert corrupted, "no corruptible targets in this world"
        return corrupted

    def test_pruning_counters_events_and_metrics(self, small_dataset):
        registry = MetricsRegistry()
        log = EventLog(capacity=4096)
        previous_registry = set_registry(registry)
        previous_log = set_event_log(log)
        try:
            evidence = self._corrupted_evidence(small_dataset)
            vid_filter = VIDFilter(
                small_dataset.store,
                FilterConfig(
                    topology=TopologyConfig(model=small_dataset.topology)
                ),
            )
            vid_filter.match(evidence)
            report = vid_filter.topology_report()
            assert report["pruned"] > 0
            assert report["kept"] > 0
            pruned_events = log.events(type=ev.V_TOPOLOGY_PRUNED)
            assert pruned_events
            assert all(e["fields"]["dropped"] > 0 for e in pruned_events)
            text = registry.render_prometheus()
            assert "ev_topology_pruned_total" in text
            assert "ev_topology_kept_total" in text
        finally:
            set_registry(previous_registry)
            set_event_log(previous_log)

    def test_counters_absent_without_topology(self, small_dataset):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            targets = list(small_dataset.sample_targets(4, seed=0))
            evidence = {
                t: list(small_dataset.store.keys)[:5] for t in targets
            }
            VIDFilter(small_dataset.store, FilterConfig()).match(evidence)
            assert "ev_topology" not in registry.render_prometheus()
        finally:
            set_registry(previous)


# -- the topology-enabled worker ---------------------------------------


class TestWorkerTopology:
    def test_build_service_wires_the_model_in(self):
        from repro.cluster.worker import WorkerSpec, _build_service

        spec = WorkerSpec(
            worker_id="w0",
            config=ExperimentConfig(
                num_people=30, cells_per_side=3, duration=200.0, seed=4
            ),
            use_topology=True,
        )
        service, _reloaded, _backend, topology = _build_service(spec)
        assert topology["enabled"] is True
        assert topology["edges"] > 0
        assert service.config.matcher.filter.topology is not None

    def test_build_service_without_topology_flag(self):
        from repro.cluster.worker import WorkerSpec, _build_service

        spec = WorkerSpec(
            worker_id="w0",
            config=ExperimentConfig(
                num_people=30, cells_per_side=3, duration=200.0, seed=4
            ),
        )
        service, _reloaded, _backend, topology = _build_service(spec)
        assert topology is None
        assert service.config.matcher.filter.topology is None

    def test_pre_topology_world_serves_blind(self, small_dataset, tmp_path):
        from repro.cluster.worker import WorkerSpec, _build_service

        small_dataset.topology = None
        path = save_dataset(small_dataset, tmp_path / "old.npz")
        spec = WorkerSpec(
            worker_id="w0", dataset_path=str(path), use_topology=True
        )
        service, _reloaded, _backend, topology = _build_service(spec)
        assert topology == {"enabled": False}
        assert service.config.matcher.filter.topology is None


# -- convoys -----------------------------------------------------------


def make_scenario(cell, tick, inclusive):
    key = ScenarioKey(cell_id=cell, tick=tick)
    return EVScenario(
        e=EScenario(
            key=key,
            inclusive=frozenset(EID(i) for i in inclusive),
            vague=frozenset(),
        ),
        v=VScenario(key=key, detections=()),
    )


class TestConvoyQuery:
    def test_finds_a_moving_co_traveler(self):
        store = ScenarioStore(
            [
                make_scenario(0, 0, {1, 2}),
                make_scenario(1, 1, {1, 2}),
                make_scenario(2, 2, {1, 2}),
                make_scenario(3, 3, {1, 9}),  # 9 shares only one key
            ]
        )
        convoys = find_convoys(store, EID(1), model=line_model(6))
        assert len(convoys) == 1
        convoy = convoys[0]
        assert isinstance(convoy, Convoy)
        assert convoy.companion == EID(2)
        assert convoy.sightings == 3
        assert convoy.cells == (0, 1, 2)
        assert (convoy.start_tick, convoy.end_tick) == (0, 2)
        assert convoy.span_ticks == 2

    def test_parked_together_is_not_a_convoy(self):
        store = ScenarioStore(
            [make_scenario(2, t, {1, 2}) for t in range(6)]
        )
        assert find_convoys(store, EID(1), model=line_model(6)) == []
        # ...unless the caller only asks for co-occurrence (min_cells=1).
        relaxed = find_convoys(
            store, EID(1), model=line_model(6), min_cells=1
        )
        assert len(relaxed) == 1 and relaxed[0].sightings == 6

    def test_infeasible_jump_splits_the_segment(self):
        # 0 -> 5 in one tick needs 5 hops on the line: split there.
        store = ScenarioStore(
            [
                make_scenario(0, 0, {1, 2}),
                make_scenario(1, 1, {1, 2}),
                make_scenario(2, 2, {1, 2}),
                make_scenario(5, 3, {1, 2}),
                make_scenario(5, 4, {1, 2}),
            ]
        )
        convoys = find_convoys(store, EID(1), model=line_model(6))
        assert len(convoys) == 1
        assert convoys[0].cells == (0, 1, 2)  # the tail segment is short

    def test_transit_bound_polices_slow_joins(self):
        # Direct fitted edge 0 -> 1 with quantile 1 tick; a 4-tick gap
        # across it is two trips, not a convoy.
        store = ScenarioStore(
            [
                make_scenario(0, 0, {1, 2}),
                make_scenario(0, 1, {1, 2}),
                make_scenario(1, 5, {1, 2}),
                make_scenario(2, 6, {1, 2}),
            ]
        )
        tight = find_convoys(
            store, EID(1), model=line_model(6, quantile_ticks=1), min_shared=2
        )
        assert {c.cells for c in tight} == {(1, 2)}
        loose = find_convoys(
            store, EID(1), model=line_model(6, quantile_ticks=10), min_shared=2
        )
        assert {c.cells for c in loose} == {(0, 1, 2)}

    def test_same_tick_two_cells_is_never_joinable(self):
        store = ScenarioStore(
            [
                make_scenario(0, 0, {1, 2}),
                make_scenario(1, 0, {1, 2}),  # two places at once
                make_scenario(1, 1, {1, 2}),
            ]
        )
        convoys = find_convoys(store, EID(1), min_shared=2)
        assert all(c.sightings == 2 for c in convoys)

    def test_max_gap_without_a_model(self):
        store = ScenarioStore(
            [
                make_scenario(0, 0, {1, 2}),
                make_scenario(1, 1, {1, 2}),
                make_scenario(2, 50, {1, 2}),
                make_scenario(3, 51, {1, 2}),
            ]
        )
        gapped = find_convoys(store, EID(1), min_shared=2, max_gap_ticks=5)
        assert {c.cells for c in gapped} == {(0, 1), (2, 3)}
        joined = find_convoys(store, EID(1), min_shared=2)
        assert {c.cells for c in joined} == {(0, 1, 2, 3)}

    def test_validation_and_unknown_targets(self):
        store = ScenarioStore([make_scenario(0, 0, {1})])
        with pytest.raises(ValueError, match="min_shared"):
            ConvoyQuery(store, min_shared=0)
        with pytest.raises(ValueError, match="min_cells"):
            ConvoyQuery(store, min_cells=0)
        with pytest.raises(ValueError, match="max_gap_ticks"):
            ConvoyQuery(store, max_gap_ticks=0)
        # A single sighting can never reach min_shared.
        assert ConvoyQuery(store).find(EID(1)) == []

    def test_results_on_a_generated_world_are_symmetric(self, small_dataset):
        query = ConvoyQuery(
            small_dataset.store,
            model=small_dataset.topology,
            min_shared=4,
        )
        found = None
        for eid in small_dataset.eids:
            convoys = query.find(eid)
            if convoys:
                found = convoys[0]
                break
        assert found is not None, "no convoys in this world at min_shared=4"
        mirrored = query.find(found.companion)
        assert any(
            c.companion == found.leader
            and c.sightings == found.sightings
            and (c.start_tick, c.end_tick)
            == (found.start_tick, found.end_tick)
            for c in mirrored
        )
