"""Tests for experiment configuration and dataset assembly."""

import pytest

from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import build_dataset


class TestExperimentConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_people": 0},
            {"region_side": 0.0},
            {"cells_per_side": 0},
            {"duration": 0.0},
            {"sample_dt": 0.0},
            {"warmup": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_density(self):
        config = ExperimentConfig(num_people=1000, cells_per_side=5)
        assert config.num_cells == 25
        assert config.density == pytest.approx(40.0)

    def test_num_ticks(self):
        config = ExperimentConfig(duration=100.0, sample_dt=10.0)
        assert config.num_ticks == 11

    def test_with_density(self):
        config = ExperimentConfig(num_people=1000)
        denser = config.with_density(250.0)
        assert denser.cells_per_side == 2
        assert denser.num_people == 1000
        with pytest.raises(ValueError):
            config.with_density(0.0)

    def test_subconfig_propagation(self):
        config = ExperimentConfig(
            device_carry_rate=0.8,
            e_drift_sigma=5.0,
            e_miss_rate=0.1,
            v_miss_rate=0.2,
            window_ticks=3,
            feature_dimension=16,
            feature_noise=0.3,
        )
        assert config.population_config().device_carry_rate == 0.8
        assert config.population_config().feature_space.dimension == 16
        assert config.e_sensing_config().drift_sigma == 5.0
        assert config.e_sensing_config().miss_rate == 0.1
        assert config.v_sensing_config().miss_rate == 0.2
        assert config.builder_config().window_ticks == 3

    def test_hashable_for_caching(self):
        a = ExperimentConfig()
        b = ExperimentConfig()
        assert hash(a) == hash(b)
        assert a == b


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset(
            ExperimentConfig(
                num_people=30,
                cells_per_side=2,
                duration=200.0,
                sample_dt=10.0,
                warmup=0.0,
                seed=1,
            )
        )

    def test_shapes(self, dataset):
        assert dataset.population.num_people == 30
        assert dataset.grid.num_cells == 4
        assert dataset.traces.num_ticks == 21
        assert len(dataset.store) > 0

    def test_truth_map(self, dataset):
        truth = dataset.truth
        assert len(truth) == 30
        for eid, vid in truth.items():
            assert eid.index == vid.index  # construction invariant

    def test_sample_targets(self, dataset):
        targets = dataset.sample_targets(10, seed=3)
        assert len(targets) == 10
        assert len(set(targets)) == 10
        assert dataset.sample_targets(10, seed=3) == targets
        assert dataset.sample_targets(10, seed=4) != targets

    def test_sample_too_many_targets(self, dataset):
        with pytest.raises(ValueError):
            dataset.sample_targets(31)

    def test_deterministic_build(self):
        config = ExperimentConfig(
            num_people=10, cells_per_side=2, duration=100.0, warmup=0.0, seed=9
        )
        a = build_dataset(config)
        b = build_dataset(config)
        assert a.store.keys == b.store.keys
        for key in a.store.keys:
            assert a.store.e_scenario(key).inclusive == b.store.e_scenario(key).inclusive

    def test_device_carry_rate_respected(self):
        dataset = build_dataset(
            ExperimentConfig(
                num_people=100,
                cells_per_side=2,
                duration=100.0,
                warmup=0.0,
                device_carry_rate=0.5,
                seed=2,
            )
        )
        assert 25 < len(dataset.eids) < 75


class TestCellShapeAndMobility:
    def test_invalid_cell_shape(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            ExperimentConfig(cell_shape="triangle")
        with _pytest.raises(ValueError):
            ExperimentConfig(hex_radius=0.0)
        with _pytest.raises(ValueError):
            ExperimentConfig(mobility_model="teleport")

    def test_hex_dataset_builds_and_matches(self):
        from repro.core.matcher import EVMatcher
        from repro.world.cells import HexCellGrid

        dataset = build_dataset(
            ExperimentConfig(
                num_people=60,
                cell_shape="hex",
                hex_radius=120.0,
                region_side=400.0,
                duration=300.0,
                warmup=50.0,
                seed=5,
            )
        )
        assert isinstance(dataset.grid, HexCellGrid)
        report = EVMatcher(dataset.store).match(list(dataset.sample_targets(15, seed=1)))
        assert report.score(dataset.truth).accuracy >= 0.6

    def test_alternative_mobility_models_build(self):
        for model in ("random_walk", "gauss_markov"):
            dataset = build_dataset(
                ExperimentConfig(
                    num_people=20,
                    cells_per_side=2,
                    region_side=300.0,
                    duration=200.0,
                    warmup=0.0,
                    mobility_model=model,
                    seed=6,
                )
            )
            assert len(dataset.store) > 0
