"""Shared fixtures: small, session-cached synthetic worlds.

The worlds are deliberately tiny (fast) but non-degenerate: enough
people, cells and ticks that set splitting, VID filtering and the
practical-setting machinery all exercise their real code paths.
"""

from __future__ import annotations

import pytest

from repro.datagen.config import ExperimentConfig
from repro.datagen.dataset import EVDataset, build_dataset


@pytest.fixture(scope="session")
def ideal_dataset() -> EVDataset:
    """A small ideal-setting world (no noise, no misses)."""
    return build_dataset(
        ExperimentConfig(
            num_people=120,
            cells_per_side=3,
            duration=600.0,
            sample_dt=10.0,
            warmup=100.0,
            seed=42,
        )
    )


@pytest.fixture(scope="session")
def practical_dataset() -> EVDataset:
    """A small practical-setting world: drift, vague zones, misses."""
    return build_dataset(
        ExperimentConfig(
            num_people=120,
            cells_per_side=3,
            duration=600.0,
            sample_dt=10.0,
            warmup=100.0,
            vague_width=25.0,
            e_drift_sigma=12.0,
            e_miss_rate=0.05,
            v_miss_rate=0.05,
            window_ticks=2,
            seed=43,
        )
    )
