"""Tests for the matching-refining loop (Algorithm 2)."""

import pytest

from repro.core.refining import RefiningConfig, RefiningMatcher
from repro.core.set_splitting import SplitConfig
from repro.core.vid_filtering import FilterConfig


class TestRefiningConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            RefiningConfig(max_rounds=0)


class TestRefiningMatcher:
    def test_single_round_equals_plain_pipeline_shape(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(15, seed=1))
        matcher = RefiningMatcher(
            ideal_dataset.store,
            split_config=SplitConfig(seed=5),
            refining_config=RefiningConfig(max_rounds=1),
        )
        results, stats = matcher.run(targets)
        assert set(results.keys()) == set(targets)
        assert stats.rounds == 1
        assert stats.refined_per_round == [len(targets)]

    def test_every_target_gets_a_result(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(15, seed=2))
        matcher = RefiningMatcher(
            practical_dataset.store,
            split_config=SplitConfig(seed=5),
            refining_config=RefiningConfig(max_rounds=3),
        )
        results, stats = matcher.run(targets)
        assert set(results.keys()) == set(targets)
        for result in results.values():
            assert result.eid in set(targets)

    def test_rounds_bounded(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(10, seed=3))
        matcher = RefiningMatcher(
            practical_dataset.store,
            split_config=SplitConfig(seed=5),
            # An unsatisfiable bar forces refining every round.
            filter_config=FilterConfig(min_agreement=0.999),
            refining_config=RefiningConfig(max_rounds=3),
        )
        results, stats = matcher.run(targets)
        assert stats.rounds <= 3
        assert len(stats.refined_per_round) == stats.rounds

    def test_acceptable_matches_not_rerun(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(15, seed=4))
        matcher = RefiningMatcher(
            ideal_dataset.store,
            split_config=SplitConfig(seed=5),
            filter_config=FilterConfig(min_agreement=0.51),
            refining_config=RefiningConfig(max_rounds=3),
        )
        _results, stats = matcher.run(targets)
        if stats.rounds > 1:
            # Later rounds only revisit the unacceptable subset.
            assert stats.refined_per_round[1] < stats.refined_per_round[0]

    def test_pooling_accumulates_choices(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(12, seed=5))
        strict = RefiningMatcher(
            practical_dataset.store,
            split_config=SplitConfig(seed=5),
            filter_config=FilterConfig(min_agreement=0.999),
            refining_config=RefiningConfig(max_rounds=3),
        )
        results, stats = strict.run(targets)
        # Targets refined across rounds hold pooled (longer) choice lists.
        pooled = [r for r in results.values() if len(r.scenario_keys) > 4]
        assert stats.rounds >= 2
        assert pooled, "multi-round pooling should lengthen some lists"

    def test_stubborn_reported(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(8, seed=6))
        matcher = RefiningMatcher(
            practical_dataset.store,
            split_config=SplitConfig(seed=5),
            filter_config=FilterConfig(min_agreement=0.999),
            refining_config=RefiningConfig(max_rounds=2),
        )
        results, stats = matcher.run(targets)
        # With an impossible acceptance bar everything ends stubborn.
        assert stats.stubborn
        assert stats.stubborn <= frozenset(targets)

    def test_refining_does_not_reuse_scenarios_across_rounds(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(10, seed=7))
        matcher = RefiningMatcher(
            practical_dataset.store,
            split_config=SplitConfig(seed=5),
            filter_config=FilterConfig(min_agreement=0.999),
            refining_config=RefiningConfig(max_rounds=3),
        )
        results, _stats = matcher.run(targets)
        for result in results.values():
            keys = list(result.scenario_keys)
            assert len(keys) == len(set(keys)), "rounds must use fresh scenarios"
