"""Tests for the high-level EVMatcher API and MatchReport."""

import pytest

from repro.core.matcher import EVMatcher, MatcherConfig, MatchReport
from repro.core.refining import RefiningConfig
from repro.core.set_splitting import SplitConfig
from repro.world.entities import EID


class TestMatcherConfig:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            MatcherConfig(parallelism=0)


class TestEVMatcher:
    def test_match_reports_all_targets(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(20, seed=1))
        report = matcher.match(targets)
        assert report.algorithm == "ss"
        assert set(report.results.keys()) == set(targets)
        assert report.num_selected > 0
        assert report.avg_scenarios_per_eid > 0

    def test_ideal_accuracy_high(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(40, seed=2))
        report = matcher.match(targets)
        score = report.score(ideal_dataset.truth)
        assert score.total == 40
        assert score.accuracy >= 0.8

    def test_match_one(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        target = ideal_dataset.sample_targets(1, seed=3)[0]
        result = matcher.match_one(target)
        assert result.eid == target

    def test_match_universal_covers_all_eids(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        report = matcher.match_universal()
        assert set(report.targets) == set(ideal_dataset.eids)

    def test_edp_baseline_runs(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(20, seed=4))
        report = matcher.match_edp(targets)
        assert report.algorithm == "edp"
        assert report.score(ideal_dataset.truth).accuracy >= 0.7

    def test_ss_selects_fewer_than_edp(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(40, seed=5))
        ss = matcher.match(targets)
        edp = matcher.match_edp(targets)
        assert ss.num_selected < edp.num_selected

    def test_times_populated_and_v_dominates(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(20, seed=6))
        report = matcher.match(targets)
        assert report.times.v_time > report.times.e_time
        assert report.times.total == pytest.approx(
            report.times.e_time + report.times.v_time
        )

    def test_parallelism_scales_times(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(10, seed=7))
        serial = EVMatcher(
            ideal_dataset.store, MatcherConfig(parallelism=1)
        ).match(targets)
        parallel = EVMatcher(
            ideal_dataset.store, MatcherConfig(parallelism=8)
        ).match(targets)
        assert parallel.times.total == pytest.approx(serial.times.total / 8)

    def test_refining_config_engages_loop(self, practical_dataset):
        targets = list(practical_dataset.sample_targets(12, seed=8))
        matcher = EVMatcher(
            practical_dataset.store,
            MatcherConfig(refining=RefiningConfig(max_rounds=3)),
        )
        report = matcher.match(targets)
        assert report.refining is not None
        assert report.refining.rounds >= 1

    def test_predictions_map(self, ideal_dataset):
        matcher = EVMatcher(ideal_dataset.store)
        targets = list(ideal_dataset.sample_targets(10, seed=9))
        report = matcher.match(targets)
        predictions = report.predictions()
        assert set(predictions.keys()) == set(targets)

    def test_deterministic_reports(self, ideal_dataset):
        targets = list(ideal_dataset.sample_targets(10, seed=10))
        config = MatcherConfig(split=SplitConfig(seed=3))
        a = EVMatcher(ideal_dataset.store, config).match(targets)
        b = EVMatcher(ideal_dataset.store, config).match(targets)
        assert a.predictions() == b.predictions()
        assert a.num_selected == b.num_selected

    def test_practical_dataset_still_matches(self, practical_dataset):
        matcher = EVMatcher(
            practical_dataset.store,
            MatcherConfig(refining=RefiningConfig(max_rounds=3)),
        )
        targets = list(practical_dataset.sample_targets(20, seed=11))
        report = matcher.match(targets)
        assert report.score(practical_dataset.truth).accuracy >= 0.6
